module Journal = Qs_obs.Journal

type action =
  | Remap of { of_new : int -> int; me : int }
  | Admit
  | Depart
  | Observe

type t = {
  me : int; (* universe pid, not a slot *)
  f : int;
  min_n : int;
  mutable config : Config.t;
  mutable log : (int * Config.change) list; (* newest first *)
}

let create ~me ~f ?min_n init =
  if me < 0 then invalid_arg "Membership.create: negative pid";
  if f < 0 then invalid_arg "Membership.create: negative f";
  let min_n = match min_n with Some m -> m | None -> (2 * f) + 1 in
  if Config.n init < min_n then
    invalid_arg "Membership.create: initial config below the floor";
  { me; f; min_n; config = init; log = [] }

let config t = t.config

let f t = t.f

let me t = t.me

let min_n t = t.min_n

let qs_config t = { Qs_core.Quorum_select.n = Config.n t.config; f = t.f }

let active t = Config.mem t.config t.me

let slot t = Config.slot_of_pid t.config t.me

let log t = List.rev t.log

let validate t change =
  let p = Config.target change in
  match change with
  | Config.Join _ ->
    if p < 0 then Error "negative pid"
    else if Config.mem t.config p then Error "already a member"
    else Ok ()
  | Config.Leave _ | Config.Eject _ ->
    if not (Config.mem t.config p) then Error "not a member"
    else if Config.n t.config - 1 < t.min_n then
      Error "membership would drop below the quorum floor"
    else Ok ()

(* Apply one config-change log entry to this process's view. Every correct
   process applies the same log in the same order — agreement on the log
   itself rides on the BFT layer above (harnesses apply it synchronously;
   a real deployment would commit each entry through the replicated log) —
   so the returned action is a deterministic function of (config, me). *)
let handle_change t change =
  (match validate t change with
  | Ok () -> ()
  | Error e ->
    invalid_arg
      (Printf.sprintf "Membership.handle_change: %s: %s"
         (Config.change_to_string change) e));
  let old = t.config in
  let fresh = Config.apply old change in
  t.config <- fresh;
  t.log <- (Config.cepoch fresh, change) :: t.log;
  let was = Config.mem old t.me and now = Config.mem fresh t.me in
  match (was, now) with
  | true, true ->
    let me_slot =
      match Config.slot_of_pid fresh t.me with Some s -> s | None -> assert false
    in
    Remap { of_new = Config.of_new ~old ~fresh; me = me_slot }
  | true, false -> Depart
  | false, true ->
    (* A joiner inherits nothing: whatever its selector held predates its
       admission (possibly from an older departure or a stale-sized spare
       instance). It remaps fully fresh, goes dormant and bootstraps
       through the rejoin plane. *)
    Admit
  | false, false -> Observe

(* Journal the change once, from the coordinating harness — per-process
   engines stay silent (their selectors journal [Reconfigured] themselves),
   so a change produces one [Config_changed] plus one [Member_*], not n. *)
let announce fresh change =
  if Journal.live () then begin
    let cepoch = Config.cepoch fresh in
    let p = Config.target change in
    (match change with
    | Config.Join _ -> Journal.record (Journal.Member_joined { pid = p; cepoch })
    | Config.Leave _ -> Journal.record (Journal.Member_left { pid = p; cepoch })
    | Config.Eject _ ->
      Journal.record (Journal.Member_ejected { pid = p; cepoch }));
    Journal.record
      (Journal.Config_changed { cepoch; members = Config.members fresh })
  end

(* The initial [Config_changed] (membership epoch 0) — gives the monitor
   the true member set before the first change, so churn harnesses whose
   initial membership is a strict subset of the universe start tracked. *)
let announce_bootstrap config =
  if Journal.live () then
    Journal.record
      (Journal.Config_changed
         { cepoch = Config.cepoch config; members = Config.members config })

let fingerprint t =
  Printf.sprintf "%s|%d|%s" (Config.fingerprint t.config) t.f
    (String.concat ";"
       (List.map
          (fun (c, ch) -> Printf.sprintf "%d=%s" c (Config.change_to_string ch))
          (List.rev t.log)))

type snapshot = { s_config : Config.t; s_log : (int * Config.change) list }

let snapshot t = { s_config = t.config; s_log = t.log }

let restore t s =
  t.config <- s.s_config;
  t.log <- s.s_log
