(** Per-process membership engine: dynamic Π on top of the recovery plane.

    Each process keeps its own {!Config.t} plus the config-change log that
    produced it. Agreement on the log itself is out of scope — it rides on
    the BFT layer above (the harnesses apply each entry synchronously at
    every correct process; a real deployment would commit entries through
    the replicated log) — so {!handle_change} is deterministic in
    (config, me) and returns the {e action} the caller must perform on its
    selector/rejoin wiring:

    - {!Remap}: this process stays a member; reconfigure the selector with
      the given slot remap ({!Qs_core.Quorum_select.reconfigure}) and reset
      delta-gossip peers.
    - {!Admit}: this process is the joiner; reconfigure fully fresh
      ([of_new ≡ -1]), go dormant, and bootstrap through
      {!Qs_recovery.Rejoin.start} — it must not issue a quorum until
      [Recovery_completed].
    - {!Depart}: this process was removed (voluntary leave after its
      anti-entropy handoff, or evidence-driven ejection); mute it.
    - {!Observe}: a non-member tracking the config (a spare before its
      join, or after its departure).

    Joins bootstrap through the existing [State_req]/[State_resp]/
    [State_delta] machinery with its bounded retry/backoff and
    dormant-until-synced guard; voluntary leaves drain gracefully
    ({!Qs_recovery.Rejoin.push_now} handoff before the [Leave] entry);
    ejection is proposed by an admitted {!Qs_evidence} conviction. *)

type action =
  | Remap of { of_new : int -> int; me : int }
      (** Still a member: remap the selector; [me] is the new own slot. *)
  | Admit  (** This process is the fresh joiner: bootstrap. *)
  | Depart  (** This process was removed. *)
  | Observe  (** Not a member before or after. *)

type t

val create : me:int -> f:int -> ?min_n:int -> Config.t -> t
(** [me] is this process's universe pid (member or spare). [f] is the fault
    budget, fixed across reconfigurations; [min_n] (default [2f+1]) is the
    membership floor below which removals are refused — follower-selection
    deployments pass [3f+1]. *)

val handle_change : t -> Config.change -> action
(** Apply one log entry. [Invalid_argument] when {!validate} refuses it —
    callers proposing changes should validate first. *)

val validate : t -> Config.change -> (unit, string) result
(** Why a proposed change would be refused: joining a member, removing a
    non-member, or shrinking below the floor. *)

val announce : Config.t -> Config.change -> unit
(** Journal [Member_joined]/[Member_left]/[Member_ejected] plus
    [Config_changed] for an applied change — called {e once} per change by
    the coordinating harness, not by every engine. Announce {e before}
    applying the change to the engines: the monitor translates the
    [Reconfigured] slots that follow through the latest member list. *)

val announce_bootstrap : Config.t -> unit
(** Journal the initial [Config_changed] (membership epoch 0) — churn
    harnesses whose initial membership is a strict subset of the universe
    call this once before the run. *)

val config : t -> Config.t

val qs_config : t -> Qs_core.Quorum_select.config
(** [{ n = current membership size; f }]. *)

val f : t -> int

val me : t -> int

val min_n : t -> int

val active : t -> bool
(** [me] is a member of the current config. *)

val slot : t -> int option
(** [me]'s slot in the current config. *)

val log : t -> (int * Config.change) list
(** [(cepoch, change)] entries, oldest first. *)

val fingerprint : t -> string

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
