module Sim = Qs_sim.Sim
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout
module QS = Qs_core.Quorum_select
module Pid = Qs_core.Pid
module Auth = Qs_crypto.Auth

type participation = Full | Selected

type config = {
  n : int;
  f : int;
  participation : participation;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Pid.t list

type slot_state = {
  mutable prepare : Mmsg.prepare option;
  mutable committers : Pid.t list;  (** distinct commit-certificate senders *)
  mutable executed : bool;
}

type t = {
  config : config;
  me : Pid.t;
  auth : Auth.t;
  usig : Usig.t;
  monitor : Usig.monitor;
  monitor_directory : Usig.directory;
  resync_pending : bool array;
  sim : Sim.t;
  net_send : dst:Pid.t -> Mmsg.t -> unit;
  on_execute : Mmsg.request -> unit;
  mutable fd : Mmsg.t Detector.t option;
  mutable qsel : QS.t option;
  mutable active : Pid.t list;
  mutable cepoch : int;
  slots : (int * int, slot_state) Hashtbl.t; (* (cepoch, slot) *)
  mutable next_slot : int;
  proposed : (int * int, unit) Hashtbl.t;
  awaiting_prepare : (int * int, unit) Hashtbl.t;
  executed_ids : (int * int, unit) Hashtbl.t;
  mutable executed : Mmsg.request list; (* reversed *)
  mutable fault : fault;
  mutable gaps : int;
}

let me t = t.me

let fd t = Option.get t.fd

let detector = fd

let quorum_selector t = t.qsel

let set_fault t fault = t.fault <- fault

let active t = t.active

let primary t = match t.active with p :: _ -> p | [] -> assert false

let is_primary t = primary t = t.me

let in_active t = List.mem t.me t.active

let config_epoch t = t.cepoch

let executed t = List.rev t.executed

let usig_gaps t = t.gaps

let fault_allows t dst =
  match t.fault with
  | Honest -> true
  | Mute -> false
  | Omit_to victims -> not (List.mem dst victims)

let send t ~dst body =
  if dst = t.me || fault_allows t dst then
    t.net_send ~dst (Mmsg.seal t.auth ~sender:t.me body)

let send_active t body = List.iter (fun dst -> if dst <> t.me then send t ~dst body) t.active

let send_all_including_self t body =
  for dst = 0 to t.config.n - 1 do
    send t ~dst body
  done

let slot_state t key =
  match Hashtbl.find_opt t.slots key with
  | Some s -> s
  | None ->
    let s = { prepare = None; committers = []; executed = false } in
    Hashtbl.replace t.slots key s;
    s

let execute t (request : Mmsg.request) =
  let key = (request.Mmsg.client, request.Mmsg.rid) in
  if not (Hashtbl.mem t.executed_ids key) then begin
    Hashtbl.replace t.executed_ids key ();
    t.executed <- request :: t.executed;
    t.on_execute request
  end

(* Counter acceptance with post-reconfiguration resync. *)
let accept_ui t ~digest (ui : Usig.ui) =
  match Usig.accept t.monitor ~digest ui with
  | `Ok -> true
  | `Gap when t.resync_pending.(ui.Usig.origin) ->
    t.resync_pending.(ui.Usig.origin) <- false;
    Usig.resync t.monitor ui.Usig.origin ui.Usig.counter;
    Usig.accept t.monitor ~digest ui = `Ok
  | `Gap ->
    t.gaps <- t.gaps + 1;
    false
  | `Replay | `Bad_signature -> false

(* ------------------------------------------------------------------ *)
(* Expectations (Selected mode) *)

let selected t = t.config.participation = Selected

let expect_commit t ~from ~slot =
  let epoch = t.cepoch in
  Detector.expect (fd t) ~from ~tag:"commit" (fun m ->
      match m.Mmsg.body with
      | Mmsg.Commit { cprepare; _ } ->
        cprepare.Mmsg.pview = epoch && cprepare.Mmsg.pslot = slot
      | _ -> false)

let expect_prepare_request t ~from request =
  let epoch = t.cepoch in
  Detector.expect (fd t) ~from ~tag:"prepare" (fun m ->
      match m.Mmsg.body with
      | Mmsg.Prepare p -> p.Mmsg.pview >= epoch && p.Mmsg.prequest = request
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Commit pipeline: committed on f+1 distinct contributors (the primary's
   PREPARE counts as its contribution). In Selected mode the active set has
   exactly f+1 members, so this means everyone. *)

let check_commit t (s : slot_state) =
  match s.prepare with
  | Some p when not s.executed ->
    let contributors = List.sort_uniq compare (p.Mmsg.pui.Usig.origin :: s.committers) in
    if List.length contributors >= t.config.f + 1 then begin
      s.executed <- true;
      execute t p.Mmsg.prequest
    end
  | _ -> ()

let adopt_prepare t (p : Mmsg.prepare) =
  let s = slot_state t (p.Mmsg.pview, p.Mmsg.pslot) in
  if s.prepare = None then begin
    s.prepare <- Some p;
    if not (is_primary t) then begin
      let cui = Usig.certify t.usig ~digest:(Mmsg.commit_digest p ~committer:t.me) in
      send_active t (Mmsg.Commit { cprepare = p; cui });
      if not (List.mem t.me s.committers) then s.committers <- t.me :: s.committers;
      if selected t then
        List.iter
          (fun k -> if k <> t.me && k <> primary t then expect_commit t ~from:k ~slot:p.Mmsg.pslot)
          t.active
    end;
    check_commit t s
  end

let handle_prepare t ~src (p : Mmsg.prepare) =
  if
    in_active t && src = primary t && p.Mmsg.pview = t.cepoch
    && p.Mmsg.pui.Usig.origin = src
    && accept_ui t ~digest:(Mmsg.digest_of ~view:p.Mmsg.pview ~slot:p.Mmsg.pslot p.Mmsg.prequest)
         p.Mmsg.pui
  then adopt_prepare t p

let handle_commit t ~src (cprepare, cui) =
  if in_active t && List.mem src t.active && cprepare.Mmsg.pview = t.cepoch then begin
    (* Verify the embedded primary certificate statelessly (its counter
       order is tracked on the direct PREPARE stream) and the committer's
       certificate in counter order. *)
    let embedded_ok =
      cprepare.Mmsg.pui.Usig.origin = primary t
      && Usig.verify t.monitor_directory
           ~digest:
             (Mmsg.digest_of ~view:cprepare.Mmsg.pview ~slot:cprepare.Mmsg.pslot
                cprepare.Mmsg.prequest)
           cprepare.Mmsg.pui
    in
    if
      embedded_ok && cui.Usig.origin = src
      && accept_ui t ~digest:(Mmsg.commit_digest cprepare ~committer:src) cui
    then begin
      let s = slot_state t (cprepare.Mmsg.pview, cprepare.Mmsg.pslot) in
      if s.prepare = None then adopt_prepare t cprepare;
      if not (List.mem src s.committers) then s.committers <- src :: s.committers;
      check_commit t s
    end
  end

(* ------------------------------------------------------------------ *)
(* Proposals *)

let propose t request =
  let key = (request.Mmsg.client, request.Mmsg.rid) in
  Hashtbl.replace t.proposed key ();
  let slot = t.next_slot in
  t.next_slot <- slot + 1;
  let digest = Mmsg.digest_of ~view:t.cepoch ~slot request in
  let p =
    {
      Mmsg.pview = t.cepoch;
      pslot = slot;
      prequest = request;
      pui = Usig.certify t.usig ~digest;
    }
  in
  let s = slot_state t (t.cepoch, slot) in
  s.prepare <- Some p;
  send_active t (Mmsg.Prepare p);
  if selected t then
    List.iter (fun k -> if k <> t.me then expect_commit t ~from:k ~slot) t.active;
  check_commit t s

(* Note: no early return on local execution — the cluster-wide commit may
   still need this replica's proposal or expectation (a primary that
   executed in an earlier configuration must re-propose for peers that did
   not). Exactly-once execution is enforced at [execute]. *)
let submit t request =
  let key = (request.Mmsg.client, request.Mmsg.rid) in
  if in_active t then begin
    if is_primary t then begin
      if not (Hashtbl.mem t.proposed key) then propose t request
    end
    else if selected t && not (Hashtbl.mem t.awaiting_prepare key) then begin
      Hashtbl.replace t.awaiting_prepare key ();
      expect_prepare_request t ~from:(primary t) request
    end
  end

(* ------------------------------------------------------------------ *)

let on_quorum t quorum =
  if quorum <> t.active then begin
    t.cepoch <- t.cepoch + 1;
    t.active <- quorum;
    Detector.cancel_all (fd t);
    Hashtbl.reset t.proposed;
    Hashtbl.reset t.awaiting_prepare;
    Array.fill t.resync_pending 0 t.config.n true
  end

let process t ~src msg =
  match msg.Mmsg.body with
  | Mmsg.Prepare p -> handle_prepare t ~src p
  | Mmsg.Commit { cprepare; cui } -> handle_commit t ~src (cprepare, cui)
  | Mmsg.Qsel update -> (
    match t.qsel with Some qsel -> QS.handle_update qsel update | None -> ())

let receive t ~src msg =
  if Mmsg.verify t.auth msg && msg.Mmsg.sender = src then Detector.receive (fd t) ~src msg

let create config ~me ~auth ~usig ~usig_directory ~sim ~net_send
    ?(on_execute = fun _ -> ()) () =
  if config.n <> (2 * config.f) + 1 then invalid_arg "Mreplica.create: need n = 2f+1";
  if me < 0 || me >= config.n then invalid_arg "Mreplica.create: me out of range";
  let t =
    {
      config;
      me;
      auth;
      usig;
      monitor = Usig.monitor usig_directory ~n:config.n;
      monitor_directory = usig_directory;
      resync_pending = Array.make config.n false;
      sim;
      net_send;
      on_execute;
      fd = None;
      qsel = None;
      active =
        (match config.participation with
         | Full -> List.init config.n Fun.id
         | Selected -> List.init (config.n - config.f) Fun.id);
      cepoch = 0;
      slots = Hashtbl.create 64;
      next_slot = 0;
      proposed = Hashtbl.create 64;
      awaiting_prepare = Hashtbl.create 64;
      executed_ids = Hashtbl.create 64;
      executed = [];
      fault = Honest;
      gaps = 0;
    }
  in
  let timeouts =
    Timeout.create ~n:config.n ~initial:config.initial_timeout config.timeout_strategy
  in
  t.fd <-
    Some
      (Detector.create ~sim ~me ~n:config.n ~timeouts
         ~deliver:(fun ~src m -> process t ~src m)
         ~on_suspected:(fun s ->
           match t.qsel with Some qsel -> QS.handle_suspected qsel s | None -> ())
         ());
  (match config.participation with
   | Full -> ()
   | Selected ->
     t.qsel <-
       Some
         (QS.create
            { QS.n = config.n; f = config.f }
            ~me ~auth
            ~send:(fun update -> send_all_including_self t (Mmsg.Qsel update))
            ~on_quorum:(fun quorum -> on_quorum t quorum)
            ()));
  t
