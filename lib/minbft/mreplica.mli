(** A MinBFT-style replica: n = 2f+1 with a simulated trusted component.

    The paper's second beneficiary class (Section I): systems that use
    trusted components to run with [n = 2f+1] replicas and [n − f = f+1]
    replies. Two phases: the primary's PREPARE carries a USIG certificate
    binding the request to a slot (uniqueness kills equivocation); replicas
    answer with COMMITs carrying their own certificates; a slot commits on
    [f+1] matching certificates — which in [Selected] mode means {e every}
    active replica.

    Modes mirror the PBFT substrate:
    - [Full]: all 2f+1 replicas participate; up to [f] silent {e backups}
      are masked. This demonstrator keeps the primary fixed (no rotation):
      primary fail-over is the view-change machinery already exercised by
      the XPaxos and PBFT substrates and is out of scope here.
    - [Selected]: an embedded Algorithm 1 picks the [f+1] active replicas;
      omissions inside the quorum raise expectations, suspicions re-select,
      and the (possibly new) primary re-proposes in a fresh configuration
      epoch. Execution is exactly-once per request id, like the chain and
      star demonstrators (DESIGN.md §2).

    USIG monotonicity is tracked per receiver; configuration changes resync
    the expected counters (gap evidence across epochs is not preserved —
    MinBFT's retransmission protocol is out of scope). *)

type participation = Full | Selected

type config = {
  n : int;  (** must be 2f+1 *)
  f : int;
  participation : participation;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Qs_fd.Timeout.strategy;
}

type fault = Honest | Mute | Omit_to of Qs_core.Pid.t list

type t

val create :
  config ->
  me:Qs_core.Pid.t ->
  auth:Qs_crypto.Auth.t ->
  usig:Usig.t ->
  usig_directory:Usig.directory ->
  sim:Qs_sim.Sim.t ->
  net_send:(dst:Qs_core.Pid.t -> Mmsg.t -> unit) ->
  ?on_execute:(Mmsg.request -> unit) ->
  unit ->
  t

val me : t -> Qs_core.Pid.t

val set_fault : t -> fault -> unit

val receive : t -> src:Qs_core.Pid.t -> Mmsg.t -> unit

val submit : t -> Mmsg.request -> unit

val primary : t -> Qs_core.Pid.t

val active : t -> Qs_core.Pid.t list

val config_epoch : t -> int

val executed : t -> Mmsg.request list

val detector : t -> Mmsg.t Qs_fd.Detector.t

val quorum_selector : t -> Qs_core.Quorum_select.t option
(** The embedded Algorithm-1 instance under [Selected] participation. *)

val usig_gaps : t -> int
(** Certificates this replica refused for arriving out of counter order —
    omission evidence from the trusted component. *)
