(* Bench-regression gate: diff a fresh BENCH_qsel.json against a committed
   baseline.

   The gate keys on metrics that are properties of the *code*, not the
   runner: bytes shipped by gossip, per-packet allocation, agreement
   booleans, seeded commission-fault conviction counters, and the
   cross-size select-throughput ratio (a 2× slowdown at n=1024 doubles the
   ratio even though both absolute numbers move with the machine).
   Absolute wall-clock ns/run results are compared too, but report-only:
   they fail nothing, they just show the drift.

   Improvements pass silently — the gate only stops regressions; ratchet
   the baseline forward with [derive_baseline] (--update-baseline). *)

exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let bench_schema = "qsel-bench/1"

let baseline_schema = "qsel-baseline/1"

type verdict = { name : string; ok : bool; detail : string; hard : bool }

let hard name ok detail = { name; ok; detail; hard = true }

let soft name ok detail = { name; ok; detail; hard = false }

let passed vs = List.for_all (fun v -> v.ok || not v.hard) vs

let render vs =
  let b = Buffer.create 256 in
  List.iter
    (fun v ->
      Buffer.add_string b
        (Printf.sprintf "  [%s] %-58s %s\n"
           (if v.ok then "ok" else if v.hard then "FAIL" else "warn")
           v.name v.detail))
    vs;
  Buffer.add_string b
    (if passed vs then "bench gate: PASS\n" else "bench gate: FAIL\n");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSON plumbing — missing fields in either file are [Malformed], not
   silently-passing checks. *)

let field name j =
  match Json.member name j with
  | Some v -> v
  | None -> malformed "missing field %S" name

let list_exn name j =
  match field name j with
  | Json.List l -> l
  | _ -> malformed "field %S is not a list" name

let int_f name j = Json.to_int_exn (field name j)

let float_f name j = Json.to_float_exn (field name j)

let string_f name j = Json.to_string_exn (field name j)

let bool_f name j =
  match field name j with
  | Json.Bool v -> v
  | _ -> malformed "field %S is not a bool" name

(* ------------------------------------------------------------------ *)
(* Tolerances, stored in the baseline so a deliberate loosening is a
   reviewed diff. *)

type tolerances = { bytes : float; select_ratio : float; alloc_abs : float }

let default_tolerances = { bytes = 1.25; select_ratio = 1.75; alloc_abs = 128.0 }

let tolerances_of_json j =
  match Json.member "tolerances" j with
  | None -> default_tolerances
  | Some t ->
    {
      bytes = float_f "bytes" t;
      select_ratio = float_f "select_ratio" t;
      alloc_abs = float_f "alloc_abs" t;
    }

let tolerances_json t =
  Json.Obj
    [
      ("bytes", Json.Float t.bytes);
      ("select_ratio", Json.Float t.select_ratio);
      ("alloc_abs", Json.Float t.alloc_abs);
    ]

(* The cross-size degradation factor: select throughput at the smallest n
   over the largest. Machine speed cancels out of the quotient. *)
let select_ratio scaling =
  match scaling with
  | [] | [ _ ] -> None
  | points ->
    let by_n = List.map (fun p -> (int_f "n" p, p)) points in
    let smallest = List.fold_left min max_int (List.map fst by_n) in
    let largest = List.fold_left max 0 (List.map fst by_n) in
    let ops n = float_f "select_ops_per_sec" (List.assoc n by_n) in
    let lo = ops largest in
    if lo <= 0.0 then None else Some (ops smallest /. lo)

(* ------------------------------------------------------------------ *)

let check_scaling_point ~tol ~current_points base =
  let n = int_f "n" base in
  let tag s = Printf.sprintf "scaling n=%d: %s" n s in
  match
    List.find_opt (fun p -> int_f "n" p = n) current_points
  with
  | None -> [ hard (tag "present in current run") false "point missing" ]
  | Some cur ->
    let bytes name =
      let b = int_f name base and c = int_f name cur in
      let cap = float_of_int b *. tol.bytes in
      hard (tag name)
        (float_of_int c <= cap)
        (Printf.sprintf "%d vs baseline %d (cap %.0f)" c b cap)
    in
    let agrees name =
      hard (tag name) (bool_f name cur) (if bool_f name cur then "true" else "false")
    in
    let idle = int_f "delta_idle_bytes" cur in
    let alloc = float_f "idle_alloc_per_packet" cur in
    [
      bytes "full_push_bytes";
      bytes "delta_sync_bytes";
      hard (tag "delta_idle_bytes = 0") (idle = 0) (string_of_int idle);
      hard
        (tag "idle_alloc_per_packet within cap")
        (alloc <= tol.alloc_abs)
        (Printf.sprintf "%.0f B (cap %.0f)" alloc tol.alloc_abs);
      agrees "lex_agrees";
      agrees "mis_agrees";
      agrees "peer_converged";
    ]

(* The E16 churn sweep is deterministic apart from the reconfig
   throughput, so everything else is pinned exactly: the join/leave/eject
   script counters, quorum-stability count, full availability, and the
   remap-consistency booleans. *)
let check_churn_point ~current_points base =
  let n = int_f "n" base in
  let tag s = Printf.sprintf "churn n=%d: %s" n s in
  match List.find_opt (fun p -> int_f "n" p = n) current_points with
  | None -> [ hard (tag "present in current run") false "point missing" ]
  | Some cur ->
    let eq name =
      let b = int_f name base and c = int_f name cur in
      hard (tag name) (c = b) (Printf.sprintf "%d vs baseline %d" c b)
    in
    let agrees name =
      hard (tag name) (bool_f name cur) (if bool_f name cur then "true" else "false")
    in
    let avail = float_f "availability" cur in
    [
      eq "joins";
      eq "leaves";
      eq "ejects";
      eq "quorum_changes";
      hard (tag "availability = 1.0") (avail = 1.0) (Printf.sprintf "%.2f" avail);
      agrees "remap_consistent";
      agrees "departed_clean";
    ]

(* The E18 policy sweep is fully deterministic — exposure, outage and
   quorum-change counts, availability, and the repair/agreement/Theorem-3
   booleans are code properties pinned exactly against the baseline. The
   intersection verdicts are gated from the current run alone: every
   cross-policy group must pass, non-vacuously, and so must the sampled
   n=1024 point. *)
let check_policy_point ~current_points base =
  let name = string_f "policy" base in
  let tag s = Printf.sprintf "policy %s: %s" name s in
  match List.find_opt (fun p -> string_f "policy" p = name) current_points with
  | None -> [ hard (tag "present in current run") false "point missing" ]
  | Some cur ->
    let eq fname =
      let b = int_f fname base and c = int_f fname cur in
      hard (tag fname) (c = b) (Printf.sprintf "%d vs baseline %d" c b)
    in
    let agrees fname =
      hard (tag fname) (bool_f fname cur)
        (if bool_f fname cur then "true" else "false")
    in
    let avail = float_f "availability" cur
    and bavail = float_f "availability" base in
    [
      eq "max_exposure";
      eq "outages";
      eq "quorum_changes";
      hard (tag "availability matches")
        (avail = bavail)
        (Printf.sprintf "%.2f vs baseline %.2f" avail bavail);
      agrees "repairs_clean";
      agrees "agreement";
      agrees "t3_ok";
    ]

let check_policy ~current base =
  let cur_points = list_exn "points" current in
  let isect = field "intersection" current in
  let point_checks =
    List.concat_map
      (check_policy_point ~current_points:cur_points)
      (list_exn "points" base)
  in
  let pairs = int_f "pairs" isect and sampled_pairs = int_f "sampled_pairs" isect in
  point_checks
  @ [
      hard "policy intersection: every cross-policy group ok"
        (bool_f "ok" isect)
        (if bool_f "ok" isect then "true" else "false");
      hard "policy intersection: groups non-vacuous" (pairs > 0)
        (Printf.sprintf "%d pairs" pairs);
      hard "policy intersection: sampled n=1024 ok"
        (bool_f "sampled_ok" isect && sampled_pairs > 0)
        (Printf.sprintf "ok=%b over %d pairs" (bool_f "sampled_ok" isect)
           sampled_pairs);
    ]

(* The E17 multicore-exploration sweep. Determinism is a code property and
   gated hard: every worker count must produce a byte-identical fuzz report
   and visited-state set, the sharded IDDFS must visit exactly the
   sequential explorer's states, and the visited/symmetry state counts are
   pinned to the baseline. Throughput and speedup belong to the runner —
   a single-core CI box legitimately reports 1.0x — so the fuzz-scaling
   expectation is a warn-only check. *)
let check_explore ~current base =
  let cur_points = list_exn "points" current in
  let cur_ex = field "exhaustive" current in
  let per_jobs =
    List.concat_map
      (fun j ->
        let tag s = Printf.sprintf "explore jobs=%d: %s" j s in
        match List.find_opt (fun p -> int_f "jobs" p = j) cur_points with
        | None -> [ hard (tag "present in current run") false "point missing" ]
        | Some p ->
          let speedup = float_f "speedup" p in
          [
            hard (tag "report identical to jobs=1") (bool_f "identical_report" p)
              (if bool_f "identical_report" p then "true" else "false");
            hard (tag "same visited-state set") (bool_f "same_states" p)
              (if bool_f "same_states" p then "true" else "false");
          ]
          @
          if j >= 4 then
            [
              soft (tag "fuzz speedup >= 2.5x")
                (speedup >= 2.5)
                (Printf.sprintf "%.2fx (report-only: honest 1.0x on 1 core)"
                   speedup);
            ]
          else [])
      (match Json.member "jobs" base with
      | Some (Json.List js) -> List.map Json.to_int_exn js
      | _ -> malformed "baseline explore has no jobs list")
  in
  let eq name =
    let b = int_f name base and c = int_f name cur_ex in
    hard
      (Printf.sprintf "explore exhaustive: %s" name)
      (c = b)
      (Printf.sprintf "%d vs baseline %d" c b)
  in
  per_jobs
  @ [
      hard "explore exhaustive: sharded set matches sequential"
        (bool_f "sets_agree" cur_ex)
        (if bool_f "sets_agree" cur_ex then "true" else "false");
      hard "explore exhaustive: symmetry collapses states"
        (bool_f "sym_collapses" cur_ex)
        (if bool_f "sym_collapses" cur_ex then "true" else "false");
      eq "seq_visited";
      eq "sym_visited";
    ]

let check_commission ~current base =
  let stack = string_f "stack" base in
  let tag s = Printf.sprintf "commission %s: %s" stack s in
  match
    List.find_opt (fun c -> string_f "stack" c = stack) current
  with
  | None -> [ hard (tag "present in current run") false "stack missing" ]
  | Some cur ->
    let eq name =
      let b = int_f name base and c = int_f name cur in
      hard (tag name) (c = b) (Printf.sprintf "%d vs baseline %d" c b)
    in
    let violations = int_f "violations" cur in
    [
      eq "proofs";
      eq "forgeries";
      hard (tag "violations = 0") (violations = 0) (string_of_int violations);
    ]

(* The real-runtime section. The component counters come from a fixed
   scripted sequence (mailbox pushes, crafted frames against a live TCP
   endpoint) and are pinned exactly against the baseline. The cluster
   verdicts — zero monitor violations, committed-prefix agreement, full
   workload committed, no silently-unsupported nemesis phases — are safety
   bits gated hard from the current run alone. Commit latency is the
   runner's wall clock: report-only. *)
let check_runtime ~current base =
  let cur_comp = field "component" current in
  let base_comp = field "component" base in
  let cur_cluster = field "cluster" current in
  let eq name =
    let b = int_f name base_comp and c = int_f name cur_comp in
    hard
      (Printf.sprintf "runtime component: %s" name)
      (c = b)
      (Printf.sprintf "%d vs baseline %d" c b)
  in
  let committed = int_f "committed" cur_cluster in
  let requests = int_f "requests" cur_cluster in
  let violations = int_f "violations" cur_cluster in
  let unsupported = int_f "nemesis_unsupported" cur_cluster in
  [
    eq "mailbox_shed";
    eq "dedup_dropped";
    eq "corrupt_rejected";
    hard "runtime component: reconnected"
      (bool_f "reconnected" cur_comp)
      (if bool_f "reconnected" cur_comp then "true" else "false");
    hard "runtime cluster: full workload committed" (committed = requests)
      (Printf.sprintf "%d of %d" committed requests);
    hard "runtime cluster: prefix agreement"
      (bool_f "prefix_agreement" cur_cluster)
      (if bool_f "prefix_agreement" cur_cluster then "true" else "false");
    hard "runtime cluster: monitor violations = 0" (violations = 0)
      (string_of_int violations);
    hard "runtime cluster: no unsupported nemesis phases" (unsupported = 0)
      (string_of_int unsupported);
  ]

(* Wall-clock drift, report-only: flag anything 1.5× slower than baseline
   but fail nothing — absolute ns are the runner's, not the code's. *)
let check_results ~current base =
  let key j = (string_f "group" j, string_f "name" j) in
  List.filter_map
    (fun b ->
      match field "ns_per_run" b with
      | Json.Null -> None
      | bns -> (
        let bns = Json.to_float_exn bns in
        match List.find_opt (fun c -> key c = key b) current with
        | None -> None
        | Some c -> (
          match field "ns_per_run" c with
          | Json.Null -> None
          | cns ->
            let cns = Json.to_float_exn cns in
            let g, n = key b in
            if bns > 0.0 && cns > bns *. 1.5 then
              Some
                (soft
                   (Printf.sprintf "ns %s/%s" g n)
                   false
                   (Printf.sprintf "%.0f ns vs baseline %.0f ns (%.1fx)" cns
                      bns (cns /. bns)))
            else None)))
    base

let check ~current ~baseline =
  let cs = string_f "schema" current in
  let bs = string_f "schema" baseline in
  let schema_ok =
    [
      hard "current schema" (cs = bench_schema) cs;
      hard "baseline schema" (bs = baseline_schema) bs;
    ]
  in
  if not (passed schema_ok) then schema_ok
  else begin
    let tol = tolerances_of_json baseline in
    let quick_ok =
      let bq = bool_f "quick" baseline and cq = bool_f "quick" current in
      hard "quick flag matches baseline" (bq = cq)
        (Printf.sprintf "current %b, baseline %b" cq bq)
    in
    let experiments_ok =
      match field "experiments_ok" current with
      | Json.Null -> soft "experiments_ok" true "not run (micro-only)"
      | Json.Bool b -> hard "experiments_ok" b (string_of_bool b)
      | _ -> malformed "experiments_ok is neither null nor bool"
    in
    let cur_scaling = list_exn "scaling" current in
    let scaling_checks =
      List.concat_map
        (check_scaling_point ~tol ~current_points:cur_scaling)
        (list_exn "scaling" baseline)
    in
    let ratio_check =
      match
        (select_ratio (list_exn "scaling" baseline), select_ratio cur_scaling)
      with
      | Some b, Some c ->
        let cap = b *. tol.select_ratio in
        [
          hard "select throughput ratio (smallest n / largest n)"
            (c <= cap)
            (Printf.sprintf "%.1f vs baseline %.1f (cap %.1f)" c b cap);
        ]
      | Some _, None ->
        [ hard "select throughput ratio computable" false "missing in current" ]
      | None, _ -> []
    in
    let commission_checks =
      List.concat_map
        (check_commission ~current:(list_exn "commission" current))
        (list_exn "commission" baseline)
    in
    let churn_checks =
      (* Absent from pre-churn baselines; derive_baseline always emits it,
         so one --update-baseline turns the section on. *)
      match Json.member "churn" baseline with
      | None | Some (Json.List []) -> []
      | Some (Json.List base_points) ->
        let current_points = list_exn "churn" current in
        List.concat_map (check_churn_point ~current_points) base_points
      | Some _ -> malformed "field \"churn\" is not a list"
    in
    let explore_checks =
      (* Absent from pre-multicore baselines, same opt-in as churn. *)
      match Json.member "explore" baseline with
      | None -> []
      | Some base -> check_explore ~current:(field "explore" current) base
    in
    let policy_checks =
      (* Absent from pre-policy baselines, same opt-in as churn/explore. *)
      match Json.member "policy" baseline with
      | None -> []
      | Some base -> check_policy ~current:(field "policy" current) base
    in
    let runtime_checks =
      (* Absent from pre-runtime baselines, same opt-in as churn/explore. *)
      match Json.member "runtime" baseline with
      | None -> []
      | Some base -> check_runtime ~current:(field "runtime" current) base
    in
    let ns_checks =
      match (Json.member "results" baseline, Json.member "results" current) with
      | Some (Json.List b), Some (Json.List c) -> check_results ~current:c b
      | _ -> []
    in
    (quick_ok :: experiments_ok :: scaling_checks)
    @ ratio_check @ commission_checks @ churn_checks @ explore_checks
    @ policy_checks @ runtime_checks @ ns_checks
  end

(* ------------------------------------------------------------------ *)

let derive_baseline bench =
  if string_f "schema" bench <> bench_schema then
    malformed "derive_baseline: not a %s file" bench_schema;
  let scaling =
    List.map
      (fun p ->
        Json.Obj
          [
            ("n", Json.Int (int_f "n" p));
            ("full_push_bytes", Json.Int (int_f "full_push_bytes" p));
            ("delta_sync_bytes", Json.Int (int_f "delta_sync_bytes" p));
            ("select_ops_per_sec", Json.Float (float_f "select_ops_per_sec" p));
          ])
      (list_exn "scaling" bench)
  in
  let commission =
    List.map
      (fun c ->
        Json.Obj
          [
            ("stack", Json.String (string_f "stack" c));
            ("proofs", Json.Int (int_f "proofs" c));
            ("forgeries", Json.Int (int_f "forgeries" c));
          ])
      (list_exn "commission" bench)
  in
  let churn =
    match Json.member "churn" bench with
    | Some (Json.List ps) ->
      List.map
        (fun p ->
          Json.Obj
            [
              ("n", Json.Int (int_f "n" p));
              ("joins", Json.Int (int_f "joins" p));
              ("leaves", Json.Int (int_f "leaves" p));
              ("ejects", Json.Int (int_f "ejects" p));
              ("quorum_changes", Json.Int (int_f "quorum_changes" p));
            ])
        ps
    | _ -> []
  in
  let explore =
    match Json.member "explore" bench with
    | Some e ->
      let ex = field "exhaustive" e in
      [
        ( "explore",
          Json.Obj
            [
              ( "jobs",
                Json.List
                  (List.map
                     (fun p -> Json.Int (int_f "jobs" p))
                     (list_exn "points" e)) );
              ("seq_visited", Json.Int (int_f "seq_visited" ex));
              ("sym_visited", Json.Int (int_f "sym_visited" ex));
            ] );
      ]
    | None -> []
  in
  let policy =
    match Json.member "policy" bench with
    | Some p ->
      [
        ( "policy",
          Json.Obj
            [
              ( "points",
                Json.List
                  (List.map
                     (fun pt ->
                       Json.Obj
                         [
                           ("policy", Json.String (string_f "policy" pt));
                           ("max_exposure", Json.Int (int_f "max_exposure" pt));
                           ("outages", Json.Int (int_f "outages" pt));
                           ( "availability",
                             Json.Float (float_f "availability" pt) );
                           ( "quorum_changes",
                             Json.Int (int_f "quorum_changes" pt) );
                         ])
                     (list_exn "points" p)) );
            ] );
      ]
    | None -> []
  in
  let runtime =
    match Json.member "runtime" bench with
    | Some (Json.Obj _ as r) ->
      let comp = field "component" r in
      [
        ( "runtime",
          Json.Obj
            [
              ( "component",
                Json.Obj
                  [
                    ("mailbox_shed", Json.Int (int_f "mailbox_shed" comp));
                    ("dedup_dropped", Json.Int (int_f "dedup_dropped" comp));
                    ( "corrupt_rejected",
                      Json.Int (int_f "corrupt_rejected" comp) );
                  ] );
            ] );
      ]
    | _ -> []
  in
  let results =
    match Json.member "results" bench with
    | Some (Json.List rs) ->
      List.map
        (fun r ->
          Json.Obj
            [
              ("group", Json.String (string_f "group" r));
              ("name", Json.String (string_f "name" r));
              ("ns_per_run", field "ns_per_run" r);
            ])
        rs
    | _ -> []
  in
  Json.Obj
    ([
       ("schema", Json.String baseline_schema);
       ("quick", Json.Bool (bool_f "quick" bench));
       ("tolerances", tolerances_json default_tolerances);
       ("scaling", Json.List scaling);
       ("commission", Json.List commission);
       ("churn", Json.List churn);
     ]
    @ explore @ policy @ runtime
    @ [ ("results", Json.List results) ])
