(** Bench-regression gate: diff a fresh [BENCH_qsel.json] against the
    committed [bench/baseline.json].

    Hard checks — any failure fails the gate — cover only metrics that are
    properties of the code, not the runner: gossip bytes (full push and
    delta sync, within the baseline's [bytes] tolerance), the zero-byte
    steady-state delta tick, per-packet idle allocation (absolute cap),
    the incremental-vs-scratch agreement booleans, the seeded
    commission-fault conviction counters (exact — the simulation is
    deterministic), the E16 churn sweep (exact join/leave/eject and
    quorum-stability counters, full availability and the
    remap-consistency booleans; absent from a baseline, the section is
    skipped until the next [--update-baseline]), and the cross-size
    select-throughput ratio (machine
    speed cancels out of the quotient; a 2× slowdown at the largest n
    doubles it). Absolute wall-clock ns/run rows are compared report-only:
    a >1.5× drift prints a warning, never a failure.

    Improvements pass silently; ratchet the baseline forward with
    [derive_baseline] (the CLI's [--update-baseline]). *)

exception Malformed of string
(** A field the gate needs is missing or mis-typed in either file — never
    a silent pass. *)

type verdict = { name : string; ok : bool; detail : string; hard : bool }

val check : current:Json.t -> baseline:Json.t -> verdict list

val passed : verdict list -> bool
(** [true] iff every {e hard} verdict is ok. *)

val render : verdict list -> string

val derive_baseline : Json.t -> Json.t
(** Extract the gated metrics (plus default tolerances) from a bench file
    into a fresh baseline document. *)

type tolerances = { bytes : float; select_ratio : float; alloc_abs : float }

val default_tolerances : tolerances
