type event =
  | Suspicion_raised of { who : int; suspect : int }
  | Suspicion_cleared of { who : int; suspect : int }
  | Update_sent of { owner : int; epoch : int }
  | Update_merged of { who : int; owner : int }
  | Quorum_issued of { who : int; epoch : int; quorum : int list }
  | Epoch_advanced of { who : int; epoch : int }
  | View_change of { who : int; view : int; group : int list }
  | Commit of { who : int; slot : int }
  | Net_sent of { src : int; dst : int }
  | Net_delivered of { src : int; dst : int }
  | Net_dropped of { src : int; dst : int }
  | Recovery_started of { who : int }
  | Recovery_completed of { who : int; epoch : int; retries : int }
  | Rejoin_gave_up of { who : int; retries : int }
  | Reconfigured of { who : int; cepoch : int; n : int }
  | Config_changed of { cepoch : int; members : int list }
  | Member_joined of { pid : int; cepoch : int }
  | Member_left of { pid : int; cepoch : int }
  | Member_ejected of { pid : int; cepoch : int }
  | Proof_found of { by : int; culprit : int }
  | Proof_admitted of { by : int; culprit : int }
  | Forgery_rejected of { by : int; channel : int; claimed : int }
  | Custom of string

type entry = { seq : int; at : float; event : event }

type t = {
  capacity : int;
  q : entry Queue.t;
  mutable enabled : bool;
  mutable clock : unit -> float;
  mutable next_seq : int;
  mutable dropped : int;
  mutable subscribers : (int * (entry -> unit)) list;
  mutable next_subscriber : int;
}

let create ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity must be positive";
  {
    capacity;
    q = Queue.create ();
    enabled = false;
    clock = (fun () -> 0.0);
    next_seq = 0;
    dropped = 0;
    subscribers = [];
    next_subscriber = 0;
  }

(* Domain-local for the same reason as [Metrics.default]: worker domains in
   the sharded explorer run whole monitored systems, and subscribers (the
   chaos Monitor) must only ever see their own domain's events. *)
let default_local = Qs_stdx.Domainpool.local create

let default () = Qs_stdx.Domainpool.get default_local

let set_enabled ?(j = default ()) v = j.enabled <- v

let live ?(j = default ()) () = j.enabled

let set_clock ?(j = default ()) clock = j.clock <- clock

let subscribe ?(j = default ()) f =
  let id = j.next_subscriber in
  j.next_subscriber <- id + 1;
  j.subscribers <- j.subscribers @ [ (id, f) ];
  id

let unsubscribe ?(j = default ()) id =
  j.subscribers <- List.filter (fun (id', _) -> id' <> id) j.subscribers

let record ?(j = default ()) ?at event =
  if j.enabled then begin
    let at = match at with Some a -> a | None -> j.clock () in
    let entry = { seq = j.next_seq; at; event } in
    Queue.push entry j.q;
    j.next_seq <- j.next_seq + 1;
    if Queue.length j.q > j.capacity then begin
      ignore (Queue.pop j.q);
      j.dropped <- j.dropped + 1
    end;
    List.iter (fun (_, f) -> f entry) j.subscribers
  end

let entries ?(j = default ()) () = List.rev (Queue.fold (fun acc e -> e :: acc) [] j.q)

let length ?(j = default ()) () = Queue.length j.q

let dropped ?(j = default ()) () = j.dropped

let clear ?(j = default ()) () =
  Queue.clear j.q;
  j.next_seq <- 0;
  j.dropped <- 0

let set_to_string set =
  "{" ^ String.concat "," (List.map string_of_int set) ^ "}"

let event_to_string = function
  | Suspicion_raised { who; suspect } ->
    Printf.sprintf "suspicion-raised p%d suspects p%d" who suspect
  | Suspicion_cleared { who; suspect } ->
    Printf.sprintf "suspicion-cleared p%d clears p%d" who suspect
  | Update_sent { owner; epoch } ->
    Printf.sprintf "update-sent owner=p%d epoch=%d" owner epoch
  | Update_merged { who; owner } ->
    Printf.sprintf "update-merged p%d merged row of p%d" who owner
  | Quorum_issued { who; epoch; quorum } ->
    Printf.sprintf "quorum-issued p%d epoch=%d quorum=%s" who epoch
      (set_to_string quorum)
  | Epoch_advanced { who; epoch } ->
    Printf.sprintf "epoch-advanced p%d epoch=%d" who epoch
  | View_change { who; view; group } ->
    Printf.sprintf "view-change p%d view=%d group=%s" who view (set_to_string group)
  | Commit { who; slot } -> Printf.sprintf "commit p%d slot=%d" who slot
  | Net_sent { src; dst } -> Printf.sprintf "net-sent p%d -> p%d" src dst
  | Net_delivered { src; dst } -> Printf.sprintf "net-delivered p%d -> p%d" src dst
  | Net_dropped { src; dst } -> Printf.sprintf "net-dropped p%d -> p%d" src dst
  | Recovery_started { who } -> Printf.sprintf "recovery-started p%d" who
  | Recovery_completed { who; epoch; retries } ->
    Printf.sprintf "recovery-completed p%d epoch=%d retries=%d" who epoch retries
  | Rejoin_gave_up { who; retries } ->
    Printf.sprintf "rejoin-gave-up p%d retries=%d (dormant)" who retries
  | Reconfigured { who; cepoch; n } ->
    Printf.sprintf "reconfigured p%d cepoch=%d n=%d" who cepoch n
  | Config_changed { cepoch; members } ->
    Printf.sprintf "config-changed cepoch=%d members=%s" cepoch
      (set_to_string members)
  | Member_joined { pid; cepoch } ->
    Printf.sprintf "member-joined p%d cepoch=%d" pid cepoch
  | Member_left { pid; cepoch } ->
    Printf.sprintf "member-left p%d cepoch=%d" pid cepoch
  | Member_ejected { pid; cepoch } ->
    Printf.sprintf "member-ejected p%d cepoch=%d" pid cepoch
  | Proof_found { by; culprit } ->
    Printf.sprintf "proof-found p%d proves p%d equivocated" by culprit
  | Proof_admitted { by; culprit } ->
    Printf.sprintf "proof-admitted p%d excludes p%d" by culprit
  | Forgery_rejected { by; channel; claimed } ->
    Printf.sprintf "forgery-rejected p%d: bad tag claiming p%d on channel p%d" by
      claimed channel
  | Custom s -> s

let event_to_json event =
  let obj kind fields = Json.Obj (("event", Json.String kind) :: fields) in
  let ints name set = (name, Json.List (List.map (fun i -> Json.Int i) set)) in
  match event with
  | Suspicion_raised { who; suspect } ->
    obj "suspicion_raised" [ ("who", Json.Int who); ("suspect", Json.Int suspect) ]
  | Suspicion_cleared { who; suspect } ->
    obj "suspicion_cleared" [ ("who", Json.Int who); ("suspect", Json.Int suspect) ]
  | Update_sent { owner; epoch } ->
    obj "update_sent" [ ("owner", Json.Int owner); ("epoch", Json.Int epoch) ]
  | Update_merged { who; owner } ->
    obj "update_merged" [ ("who", Json.Int who); ("owner", Json.Int owner) ]
  | Quorum_issued { who; epoch; quorum } ->
    obj "quorum_issued"
      [ ("who", Json.Int who); ("epoch", Json.Int epoch); ints "quorum" quorum ]
  | Epoch_advanced { who; epoch } ->
    obj "epoch_advanced" [ ("who", Json.Int who); ("epoch", Json.Int epoch) ]
  | View_change { who; view; group } ->
    obj "view_change"
      [ ("who", Json.Int who); ("view", Json.Int view); ints "group" group ]
  | Commit { who; slot } ->
    obj "commit" [ ("who", Json.Int who); ("slot", Json.Int slot) ]
  | Net_sent { src; dst } ->
    obj "net_sent" [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Net_delivered { src; dst } ->
    obj "net_delivered" [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Net_dropped { src; dst } ->
    obj "net_dropped" [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Recovery_started { who } -> obj "recovery_started" [ ("who", Json.Int who) ]
  | Recovery_completed { who; epoch; retries } ->
    obj "recovery_completed"
      [ ("who", Json.Int who); ("epoch", Json.Int epoch); ("retries", Json.Int retries) ]
  | Rejoin_gave_up { who; retries } ->
    obj "rejoin_gave_up" [ ("who", Json.Int who); ("retries", Json.Int retries) ]
  | Reconfigured { who; cepoch; n } ->
    obj "reconfigured"
      [ ("who", Json.Int who); ("cepoch", Json.Int cepoch); ("n", Json.Int n) ]
  | Config_changed { cepoch; members } ->
    obj "config_changed" [ ("cepoch", Json.Int cepoch); ints "members" members ]
  | Member_joined { pid; cepoch } ->
    obj "member_joined" [ ("pid", Json.Int pid); ("cepoch", Json.Int cepoch) ]
  | Member_left { pid; cepoch } ->
    obj "member_left" [ ("pid", Json.Int pid); ("cepoch", Json.Int cepoch) ]
  | Member_ejected { pid; cepoch } ->
    obj "member_ejected" [ ("pid", Json.Int pid); ("cepoch", Json.Int cepoch) ]
  | Proof_found { by; culprit } ->
    obj "proof_found" [ ("by", Json.Int by); ("culprit", Json.Int culprit) ]
  | Proof_admitted { by; culprit } ->
    obj "proof_admitted" [ ("by", Json.Int by); ("culprit", Json.Int culprit) ]
  | Forgery_rejected { by; channel; claimed } ->
    obj "forgery_rejected"
      [ ("by", Json.Int by); ("channel", Json.Int channel); ("claimed", Json.Int claimed) ]
  | Custom s -> obj "custom" [ ("detail", Json.String s) ]

let entry_to_json e =
  match event_to_json e.event with
  | Json.Obj fields ->
    Json.Obj (("seq", Json.Int e.seq) :: ("at_ms", Json.Float e.at) :: fields)
  | _ -> assert false

let to_json ?j () =
  Json.Obj
    [
      ("dropped", Json.Int (dropped ?j ()));
      ("events", Json.List (List.map entry_to_json (entries ?j ())));
    ]

let render ?j () =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "%6d %10.3fms  %s" e.seq e.at (event_to_string e.event))
       (entries ?j ()))
