(** Structured protocol-event journal.

    Generalizes the ad-hoc [Network.set_tracer] hook into typed events that
    every instrumented layer can append to: the network (sends, deliveries,
    drops), the failure detector (suspicions raised and cleared), quorum
    selection (UPDATEs sent and merged, quorums issued, epoch advances) and
    XPaxos (view changes, commits).

    Recording is opt-in: a journal starts disabled and {!record} on a
    disabled journal is a cheap no-op, so the always-on instrumentation in
    the hot paths costs nothing unless a caller (CLI, test, experiment)
    turns the journal on. Entries carry a monotonic sequence number and the
    current virtual time as reported by the registered clock (the simulator
    wires its clock in at network creation). Capacity is bounded: the
    journal is a ring that drops its oldest entries, counting the drops. *)

type event =
  | Suspicion_raised of { who : int; suspect : int }
      (** [who]'s failure detector raised a suspicion on [suspect]. *)
  | Suspicion_cleared of { who : int; suspect : int }
      (** A late message proved the suspicion false. *)
  | Update_sent of { owner : int; epoch : int }
      (** [owner] broadcast its stamped suspicion row. *)
  | Update_merged of { who : int; owner : int }
      (** [who] merged new information from [owner]'s row. *)
  | Quorum_issued of { who : int; epoch : int; quorum : int list }
  | Epoch_advanced of { who : int; epoch : int }
  | View_change of { who : int; view : int; group : int list }
  | Commit of { who : int; slot : int }
  | Net_sent of { src : int; dst : int }
  | Net_delivered of { src : int; dst : int }
  | Net_dropped of { src : int; dst : int }
  | Recovery_started of { who : int }
      (** [who] restarted after an amnesia crash and began the rejoin
          protocol (broadcast its first [StateReq]). *)
  | Recovery_completed of { who : int; epoch : int; retries : int }
      (** [who]'s rejoin finished: enough [StateResp]s were max-merged.
          [epoch] is the fast-forwarded epoch, [retries] counts rebroadcast
          rounds beyond the first. *)
  | Rejoin_gave_up of { who : int; retries : int }
      (** [who]'s rejoin round exhausted its retry bound without [needed]
          valid responses: the process stays dormant (the safe failure
          mode) until an unsolicited push or a fresh {!Recovery_started}
          round revives it. *)
  | Reconfigured of { who : int; cepoch : int; n : int }
      (** [who]'s selector remapped its state onto membership epoch
          [cepoch] ([n] processes). *)
  | Config_changed of { cepoch : int; members : int list }
      (** The membership engine applied a config-change log entry:
          [members] is the new ordered pid set at epoch [cepoch]. *)
  | Member_joined of { pid : int; cepoch : int }
      (** [pid] was admitted at [cepoch]; it bootstraps through the rejoin
          plane and must stay dormant until {!Recovery_completed}. *)
  | Member_left of { pid : int; cepoch : int }
      (** [pid] left voluntarily at [cepoch] after a graceful drain. *)
  | Member_ejected of { pid : int; cepoch : int }
      (** An admitted evidence proof convicted [pid]; the config change at
          [cepoch] removes it permanently. *)
  | Proof_found of { by : int; culprit : int }
      (** [by]'s evidence store assembled a transferable equivocation proof
          against [culprit] (two validly-signed conflicting rows). *)
  | Proof_admitted of { by : int; culprit : int }
      (** [by] verified a (local or gossiped) proof and permanently excluded
          [culprit] from its future quorums. *)
  | Forgery_rejected of { by : int; channel : int; claimed : int }
      (** [by] received a frame on [channel] whose tag fails to verify under
          [claimed]'s key — a forgery; local quarantine only, never
          transferable evidence. *)
  | Custom of string  (** Escape hatch for harnesses and examples. *)

type entry = { seq : int; at : float; event : event }
(** [at] is virtual milliseconds from the registered clock (0 when no clock
    was registered). *)

type t

val create : ?capacity:int -> unit -> t
(** Disabled until {!set_enabled}. [capacity] defaults to 65536 entries. *)

val default : unit -> t
(** The calling domain's journal — what the instrumented protocol layers
    record into when [?j] is omitted. Domain-local like
    {!Metrics.default}, so a worker domain's subscribers only see their
    own domain's events. *)

val set_enabled : ?j:t -> bool -> unit

val live : ?j:t -> unit -> bool
(** [true] iff enabled — guard for avoiding event construction on hot
    paths. *)

val set_clock : ?j:t -> (unit -> float) -> unit

val record : ?j:t -> ?at:float -> event -> unit
(** No-op when disabled. [at] overrides the clock. *)

val subscribe : ?j:t -> (entry -> unit) -> int
(** Register an online observer, called synchronously with every recorded
    entry (only while the journal is enabled). The returned id feeds
    {!unsubscribe}. The invariant monitor of [Qs_faults] is the main
    client. *)

val unsubscribe : ?j:t -> int -> unit
(** Remove a subscriber; unknown ids are ignored. *)

val entries : ?j:t -> unit -> entry list
(** Oldest first. *)

val length : ?j:t -> unit -> int

val dropped : ?j:t -> unit -> int
(** Entries evicted by the capacity ring since the last {!clear}. *)

val clear : ?j:t -> unit -> unit
(** Drop all entries and reset [seq] and the drop counter; keeps the
    enabled flag and clock. *)

val event_to_string : event -> string

val entry_to_json : entry -> Json.t

val to_json : ?j:t -> unit -> Json.t
(** [{"dropped": n, "events": [...]}] — oldest first. *)

val render : ?j:t -> unit -> string
(** One human-readable line per entry, oldest first. *)
