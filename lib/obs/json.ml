type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest representation that still round-trips; always contains a '.' or
   an exponent so the parser reads it back as a [Float]. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let shortest = Printf.sprintf "%.12g" f in
    let s = if float_of_string shortest = f then shortest else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n' (* inf/nan *)) s then s
    else s ^ ".0"

let rec render_buf ~indent ~level b j =
  let nl lvl =
    if indent then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (2 * lvl) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        render_buf ~indent ~level:(level + 1) b item)
      items;
    nl level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        escape_string b k;
        Buffer.add_char b ':';
        if indent then Buffer.add_char b ' ';
        render_buf ~indent ~level:(level + 1) b v)
      fields;
    nl level;
    Buffer.add_char b '}'

let render_with ~indent j =
  let b = Buffer.create 256 in
  render_buf ~indent ~level:0 b j;
  Buffer.contents b

let render j = render_with ~indent:false j

let render_pretty j = render_with ~indent:true j

(* ------------------------------------------------------------------ *)
(* Parsing: plain recursive descent over the byte string *)

exception Parse_error of int * string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'
         | Some '\\' -> Buffer.add_char b '\\'
         | Some '/' -> Buffer.add_char b '/'
         | Some 'n' -> Buffer.add_char b '\n'
         | Some 't' -> Buffer.add_char b '\t'
         | Some 'r' -> Buffer.add_char b '\r'
         | Some 'b' -> Buffer.add_char b '\b'
         | Some 'f' -> Buffer.add_char b '\012'
         | Some 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
           in
           pos := !pos + 4;
           utf8_of_code b code
         | _ -> fail "bad escape");
        advance ();
        loop ()
      end
      | Some c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec loop () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        loop ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        loop ()
      | _ -> ()
    in
    loop ();
    let lexeme = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt lexeme with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> (
        (* Integer literal too large for [int]: keep it as a float. *)
        match float_of_string_opt lexeme with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then
      invalid_arg (Printf.sprintf "Json.parse: trailing garbage at byte %d" !pos)
    else v
  | exception Parse_error (at, msg) ->
    invalid_arg (Printf.sprintf "Json.parse: %s at byte %d" msg at)

let parse s =
  match parse_exn s with v -> Ok v | exception Invalid_argument msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string_exn = function
  | String s -> s
  | _ -> invalid_arg "Json.to_string_exn"

let to_int_exn = function
  | Int i -> i
  | _ -> invalid_arg "Json.to_int_exn"

let to_float_exn = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> invalid_arg "Json.to_float_exn"
