(** A minimal, dependency-free JSON value type with a renderer and parser.

    Only what the observability layer needs: enough to emit metric
    snapshots and journal dumps, and to parse them back in tests (the
    round-trip property keeps the renderer honest). Numbers are split into
    [Int] and [Float] so counters stay exact; [Float] renders with enough
    digits to round-trip. Strings are treated as byte sequences: escapes
    below 0x20 are emitted as [\u00XX], and parsed [\uXXXX] escapes are
    decoded to UTF-8 bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val render : t -> string
(** Compact single-line rendering. Non-finite floats render as [null]. *)

val render_pretty : t -> string
(** Two-space indented rendering, for human eyes. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. The error
    string carries a byte offset. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] with the parse error. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks a field up; [None] for other shapes. *)

val to_string_exn : t -> string
val to_int_exn : t -> int
val to_float_exn : t -> float
(** Shape accessors raising [Invalid_argument] on mismatch; [to_float_exn]
    accepts both [Int] and [Float]. *)
