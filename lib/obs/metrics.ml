module Stats = Qs_stdx.Stats
module Domainpool = Qs_stdx.Domainpool

type labels = (string * string) list

type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = { mutable samples : float list (* reversed *); mutable hn : int }

type cell = C of counter | G of gauge | H of histogram

type t = {
  cells : (string * labels, cell) Hashtbl.t;
  kinds : (string, string) Hashtbl.t; (* name -> kind, for mismatch detection *)
}

let create () = { cells = Hashtbl.create 64; kinds = Hashtbl.create 64 }

(* One registry per domain: worker domains spawned by the sharded explorer
   build whole instrumented systems, and a shared Hashtbl would be a data
   race. On OCaml 4.14 (serial Domainpool) this is exactly one registry,
   same as the old process-global default. *)
let default_local = Domainpool.local create

let default () = Domainpool.get default_local

let normalize labels =
  let l = List.sort_uniq (fun (a, _) (b, _) -> compare a b) labels in
  if List.length l <> List.length labels then
    invalid_arg "Metrics: duplicate label key";
  l

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let acquire m ~labels name fresh =
  let labels = normalize labels in
  let key = (name, labels) in
  match Hashtbl.find_opt m.cells key with
  | Some cell ->
    let k = kind_name cell in
    if k <> kind_name (fresh ()) then
      invalid_arg
        (Printf.sprintf "Metrics: %s already registered as a %s" name k);
    cell
  | None ->
    let cell = fresh () in
    (match Hashtbl.find_opt m.kinds name with
     | Some k when k <> kind_name cell ->
       invalid_arg
         (Printf.sprintf "Metrics: %s already registered as a %s" name k)
     | Some _ -> ()
     | None -> Hashtbl.replace m.kinds name (kind_name cell));
    Hashtbl.replace m.cells key cell;
    cell

let counter ?(m = default ()) ?(labels = []) name =
  match acquire m ~labels name (fun () -> C { c = 0 }) with
  | C c -> c
  | _ -> assert false

let gauge ?(m = default ()) ?(labels = []) name =
  match acquire m ~labels name (fun () -> G { g = 0.0 }) with
  | G g -> g
  | _ -> assert false

let histogram ?(m = default ()) ?(labels = []) name =
  match acquire m ~labels name (fun () -> H { samples = []; hn = 0 }) with
  | H h -> h
  | _ -> assert false

let inc ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.inc: counters are monotonic";
  c.c <- c.c + by

let set g v = g.g <- v

let set_max g v = if v > g.g then g.g <- v

let observe h v =
  h.samples <- v :: h.samples;
  h.hn <- h.hn + 1

let inc_c ?m ?labels ?by name = inc ?by (counter ?m ?labels name)

let set_g ?m ?labels name v = set (gauge ?m ?labels name) v

let max_g ?m ?labels name v = set_max (gauge ?m ?labels name) v

let observe_h ?m ?labels name v = observe (histogram ?m ?labels name) v

let counter_value c = c.c

let gauge_value g = g.g

let histogram_count h = h.hn

let histogram_samples h = List.rev h.samples

let find ?(m = default ()) ?(labels = []) name =
  Hashtbl.find_opt m.cells (name, normalize labels)

let find_counter ?m ?labels name =
  match find ?m ?labels name with Some (C c) -> Some c.c | _ -> None

let find_gauge ?m ?labels name =
  match find ?m ?labels name with Some (G g) -> Some g.g | _ -> None

let reset ?(m = default ()) () =
  Hashtbl.iter
    (fun _ cell ->
      match cell with
      | C c -> c.c <- 0
      | G g -> g.g <- 0.0
      | H h ->
        h.samples <- [];
        h.hn <- 0)
    m.cells

(* ------------------------------------------------------------------ *)
(* Snapshot *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; summary : Stats.summary option }

type point = { name : string; labels : labels; value : value }

let snapshot ?(m = default ()) () =
  let points =
    Hashtbl.fold
      (fun (name, labels) cell acc ->
        let value =
          match cell with
          | C c -> Counter c.c
          | G g -> Gauge g.g
          | H h ->
            let summary =
              if h.hn = 0 then None else Some (Stats.summarize (List.rev h.samples))
            in
            Histogram { count = h.hn; summary }
        in
        { name; labels; value } :: acc)
      m.cells []
  in
  List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels)) points

let series_id p =
  match p.labels with
  | [] -> p.name
  | ls ->
    Printf.sprintf "%s{%s}" p.name
      (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) ls))

let render_text points =
  let line p =
    match p.value with
    | Counter v -> Printf.sprintf "counter   %-46s %d" (series_id p) v
    | Gauge v -> Printf.sprintf "gauge     %-46s %g" (series_id p) v
    | Histogram { count = 0; _ } ->
      Printf.sprintf "histogram %-46s n=0" (series_id p)
    | Histogram { summary = Some s; _ } ->
      Format.asprintf "histogram %-46s %a" (series_id p) Stats.pp_summary s
    | Histogram { summary = None; _ } ->
      Printf.sprintf "histogram %-46s n=%d" (series_id p) 0
  in
  String.concat "\n" (List.map line points)

let to_json points =
  let labels_json ls = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls) in
  let point_json p =
    let base = [ ("name", Json.String p.name); ("labels", labels_json p.labels) ] in
    let rest =
      match p.value with
      | Counter v -> [ ("kind", Json.String "counter"); ("value", Json.Int v) ]
      | Gauge v -> [ ("kind", Json.String "gauge"); ("value", Json.Float v) ]
      | Histogram { count; summary } ->
        [ ("kind", Json.String "histogram"); ("count", Json.Int count) ]
        @ (match summary with
           | None -> []
           | Some s ->
             [
               ("mean", Json.Float s.Stats.mean);
               ("stddev", Json.Float s.Stats.stddev);
               ("min", Json.Float s.Stats.min);
               ("median", Json.Float s.Stats.median);
               ("p95", Json.Float s.Stats.p95);
               ("max", Json.Float s.Stats.max);
             ])
    in
    Json.Obj (base @ rest)
  in
  Json.List (List.map point_json points)

let render_json points = Json.render (Json.Obj [ ("metrics", to_json points) ])
