(** Zero-dependency metrics registry.

    Three instrument kinds — monotonic counters, gauges, and histograms
    (summarised through {!Qs_stdx.Stats}) — keyed by a metric name plus an
    optional set of [(key, value)] label pairs. Label order is irrelevant:
    [\[("p","0"); ("op","send")\]] and its permutation address the same
    series. A name is bound to one kind for the lifetime of the registry;
    using it as another kind raises [Invalid_argument].

    Instruments are cheap handles: acquire one once ({!counter}, {!gauge},
    {!histogram}) and bump it on the hot path without further lookups.
    {!reset} zeroes every registered series but keeps the handles valid, so
    a CLI run can [reset] before the workload and {!snapshot} after — the
    snapshot is deterministically ordered (by name, then labels) and renders
    to both a human-readable text block and JSON.

    A {!default} registry per domain is what the instrumented protocol
    layers (network, failure detector, quorum selection, XPaxos) write to;
    every accessor takes [?m] to target a private registry instead. The
    default is domain-local (one registry on OCaml 4.14, where there is a
    single domain): systems built inside a worker domain of the sharded
    explorer get their own registry instead of racing on a shared one. *)

type t
(** A registry. *)

type labels = (string * string) list

type counter
type gauge
type histogram

val create : unit -> t

val default : unit -> t
(** The calling domain's registry — what the instrumented protocol layers
    write to when [?m] is omitted. *)

(** {1 Instruments} *)

val counter : ?m:t -> ?labels:labels -> string -> counter
(** Register (or re-acquire) a monotonic counter. *)

val gauge : ?m:t -> ?labels:labels -> string -> gauge

val histogram : ?m:t -> ?labels:labels -> string -> histogram

val inc : ?by:int -> counter -> unit
(** Add [by] (default 1). Negative increments raise [Invalid_argument]:
    counters are monotonic. *)

val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** Keep the running maximum: [set_max g v] is [set g (max v (value g))]. *)

val observe : histogram -> float -> unit

(** {1 One-shot conveniences} (lookup + operate; fine off the hot path) *)

val inc_c : ?m:t -> ?labels:labels -> ?by:int -> string -> unit
val set_g : ?m:t -> ?labels:labels -> string -> float -> unit
val max_g : ?m:t -> ?labels:labels -> string -> float -> unit
val observe_h : ?m:t -> ?labels:labels -> string -> float -> unit

(** {1 Reads} *)

val counter_value : counter -> int
val gauge_value : gauge -> float
val histogram_count : histogram -> int

val histogram_samples : histogram -> float list
(** Samples in observation order. *)

val find_counter : ?m:t -> ?labels:labels -> string -> int option
(** Value of an already-registered series; [None] if never registered.
    Never creates the series. *)

val find_gauge : ?m:t -> ?labels:labels -> string -> float option

(** {1 Snapshot and rendering} *)

val reset : ?m:t -> unit -> unit
(** Zero every series (counters to 0, gauges to 0, histograms emptied).
    Registrations and handles stay valid. *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of { count : int; summary : Qs_stdx.Stats.summary option }
      (** [summary] is [None] for an empty histogram. *)

type point = { name : string; labels : labels; value : value }

val snapshot : ?m:t -> unit -> point list
(** Deterministic: sorted by name, then by (sorted) labels. *)

val render_text : point list -> string
(** One line per series: [kind name{k=v,...} value]. *)

val to_json : point list -> Json.t
(** A JSON array of objects: [{"name", "labels", "kind", ...}]. *)

val render_json : point list -> string
(** [Json.render (to_json points)] wrapped as [{"metrics": [...]}]. *)
