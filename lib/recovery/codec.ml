module Sha256 = Qs_crypto.Sha256
module Suspicion_matrix = Qs_core.Suspicion_matrix

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

module W = struct
  type t = Buffer.t

  let create () = Buffer.create 64

  let rec int b n =
    if n < 0 then invalid_arg "Codec.W.int: negative";
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      int b (n lsr 7)
    end

  let bool b v = int b (if v then 1 else 0)

  let str b s =
    int b (String.length s);
    Buffer.add_string b s

  let contents = Buffer.contents
end

module R = struct
  type t = { s : string; mutable pos : int }

  let of_string s = { s; pos = 0 }

  let byte r =
    if r.pos >= String.length r.s then corrupt "truncated varint";
    let c = Char.code r.s.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let int r =
    let rec go shift acc =
      if shift > 62 then corrupt "varint overflow";
      let c = byte r in
      let acc = acc lor ((c land 0x7f) lsl shift) in
      if c land 0x80 <> 0 then go (shift + 7) acc else acc
    in
    go 0 0

  let bool r =
    match int r with 0 -> false | 1 -> true | n -> corrupt "bad bool %d" n

  let str r =
    let len = int r in
    if r.pos + len > String.length r.s then corrupt "truncated string";
    let s = String.sub r.s r.pos len in
    r.pos <- r.pos + len;
    s

  let eof r = r.pos = String.length r.s
end

(* ------------------------------------------------------------------ *)
(* Framing: magic, tag, version, length-prefixed payload, truncated
   SHA-256 checksum. The checksum turns torn or bit-flipped durable state
   into an explicit [Corrupt] instead of silently absorbed garbage. *)

let magic = "QSRC"

let checksum payload = String.sub (Sha256.digest_string payload) 0 8

let frame ~tag ~version payload =
  if version < 1 then invalid_arg "Codec.frame: version must be >= 1";
  let b = W.create () in
  Buffer.add_string b magic;
  W.str b tag;
  W.int b version;
  W.str b payload;
  W.str b (checksum payload);
  W.contents b

let unframe ~tag s =
  if String.length s < 4 || String.sub s 0 4 <> magic then corrupt "bad magic";
  let r = R.of_string (String.sub s 4 (String.length s - 4)) in
  let tag' = R.str r in
  if tag' <> tag then corrupt "tag mismatch: wanted %S, found %S" tag tag';
  let version = R.int r in
  let payload = R.str r in
  let sum = R.str r in
  if not (R.eof r) then corrupt "trailing bytes after frame";
  if sum <> checksum payload then corrupt "checksum mismatch";
  (version, payload)

(* ------------------------------------------------------------------ *)
(* Concrete codecs, one version each so far. Decoders accept exactly the
   versions they know; anything newer is [Corrupt], not a guess. *)

let matrix_version = 1

let encode_matrix m =
  let rows = Suspicion_matrix.to_rows m in
  let b = W.create () in
  W.int b (Array.length rows);
  Array.iter (fun row -> Array.iter (W.int b) row) rows;
  frame ~tag:"mtx" ~version:matrix_version (W.contents b)

let decode_matrix s =
  let version, payload = unframe ~tag:"mtx" s in
  if version <> matrix_version then corrupt "mtx: unknown version %d" version;
  let r = R.of_string payload in
  let n = R.int r in
  if n <= 0 || n > 4096 then corrupt "mtx: implausible size %d" n;
  let rows = Array.make_matrix n n 0 in
  for l = 0 to n - 1 do
    for k = 0 to n - 1 do
      rows.(l).(k) <- R.int r
    done
  done;
  if not (R.eof r) then corrupt "mtx: trailing bytes";
  match Suspicion_matrix.of_rows rows with
  | m -> m
  | exception Invalid_argument msg -> corrupt "mtx: %s" msg

let delta_version = 1

let encode_delta (p : Qs_core.Delta.packet) =
  let b = W.create () in
  W.int b p.Qs_core.Delta.src;
  W.int b (List.length p.Qs_core.Delta.rows);
  List.iter
    (fun (r : Qs_core.Delta.row_delta) ->
      W.int b r.owner;
      W.int b r.version;
      W.int b (Array.length r.cells);
      Array.iter
        (fun (k, v) ->
          W.int b k;
          W.int b v)
        r.cells)
    p.Qs_core.Delta.rows;
  frame ~tag:"dlt" ~version:delta_version (W.contents b)

let decode_delta s =
  let version, payload = unframe ~tag:"dlt" s in
  if version <> delta_version then corrupt "dlt: unknown version %d" version;
  let r = R.of_string payload in
  let src = R.int r in
  let nrows = R.int r in
  if nrows < 0 || nrows > 4096 then corrupt "dlt: implausible row count %d" nrows;
  (* Explicit loops: the reader is stateful, so field order must be the
     wire order, not whatever [Array.init] happens to do. *)
  let rows = ref [] in
  for _ = 1 to nrows do
    let owner = R.int r in
    let version = R.int r in
    let ncells = R.int r in
    if ncells < 0 || ncells > 4096 then
      corrupt "dlt: implausible cell count %d" ncells;
    let cells = Array.make ncells (0, 0) in
    for i = 0 to ncells - 1 do
      let k = R.int r in
      let v = R.int r in
      cells.(i) <- (k, v)
    done;
    rows := { Qs_core.Delta.owner; version; cells } :: !rows
  done;
  let rows = List.rev !rows in
  if not (R.eof r) then corrupt "dlt: trailing bytes";
  { Qs_core.Delta.src; rows }

let epoch_version = 1

let encode_epoch e =
  if e < 1 then invalid_arg "Codec.encode_epoch: epochs start at 1";
  let b = W.create () in
  W.int b e;
  frame ~tag:"epo" ~version:epoch_version (W.contents b)

let decode_epoch s =
  let version, payload = unframe ~tag:"epo" s in
  if version <> epoch_version then corrupt "epo: unknown version %d" version;
  let r = R.of_string payload in
  let e = R.int r in
  if not (R.eof r) then corrupt "epo: trailing bytes";
  if e < 1 then corrupt "epo: bad epoch %d" e;
  e

let timeouts_version = 1

let encode_timeouts ts =
  let b = W.create () in
  W.int b (Array.length ts);
  Array.iter (W.int b) ts;
  frame ~tag:"tmo" ~version:timeouts_version (W.contents b)

let decode_timeouts s =
  let version, payload = unframe ~tag:"tmo" s in
  if version <> timeouts_version then corrupt "tmo: unknown version %d" version;
  let r = R.of_string payload in
  let n = R.int r in
  if n < 0 || n > 65536 then corrupt "tmo: implausible length %d" n;
  let ts = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let v = R.int r in
    if v <= 0 then corrupt "tmo: non-positive timeout";
    ts.(i) <- v
  done;
  if not (R.eof r) then corrupt "tmo: trailing bytes";
  Array.sub ts 0 n
