(** Versioned binary codecs for durable protocol state.

    Frames are [magic | tag | version | payload | checksum]: little-endian
    base-128 varints for integers, length-prefixed byte strings, and a
    truncated SHA-256 of the payload so torn or corrupted durable state is
    an explicit {!Corrupt} rather than silently-absorbed garbage. Versions
    let a future layout change coexist with old snapshots; decoders reject
    versions they do not know.

    The low-level {!W}/{!R} pair is exported so protocol layers (the XPaxos
    commit-log prefix in {!Qs_xpaxos}) can build their own framed payloads
    in the same format. *)

exception Corrupt of string

(** {2 Primitive writer / reader} *)

module W : sig
  type t

  val create : unit -> t

  val int : t -> int -> unit
  (** Unsigned varint; [Invalid_argument] on negatives. *)

  val bool : t -> bool -> unit

  val str : t -> string -> unit
  (** Length-prefixed bytes. *)

  val contents : t -> string
end

module R : sig
  type t

  val of_string : string -> t

  val int : t -> int
  (** Raises {!Corrupt} on truncation or overflow. *)

  val bool : t -> bool

  val str : t -> string

  val eof : t -> bool
end

(** {2 Framing} *)

val frame : tag:string -> version:int -> string -> string

val unframe : tag:string -> string -> int * string
(** [(version, payload)]; {!Corrupt} on bad magic, wrong tag, checksum
    mismatch or trailing bytes. Version checking is the caller's (a decoder
    may understand several). *)

(** {2 Concrete codecs} *)

val encode_matrix : Qs_core.Suspicion_matrix.t -> string
(** The [suspected] matrix — what [StateResp] carries and what the durable
    snapshot stores. *)

val decode_matrix : string -> Qs_core.Suspicion_matrix.t
(** {!Corrupt} also covers semantic violations ([of_rows] rejection: not
    square, negative cell, self-suspicion). *)

val encode_delta : Qs_core.Delta.packet -> string
(** A delta-gossip packet — what [State_delta] carries on the wire, so
    corrupt deltas fail the checksum exactly like corrupt full states. *)

val decode_delta : string -> Qs_core.Delta.packet
(** Structural validation only; range checks against [n] happen in
    {!Qs_core.Delta.apply}. *)

val encode_epoch : int -> string

val decode_epoch : string -> int

val encode_timeouts : Qs_sim.Stime.t array -> string
(** Adaptive timeout state ({!Qs_fd.Timeout.export} output). *)

val decode_timeouts : string -> Qs_sim.Stime.t array
