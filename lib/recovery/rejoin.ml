module Sim = Qs_sim.Sim
module Stime = Qs_sim.Stime
module Journal = Qs_obs.Journal
module Metrics = Qs_obs.Metrics
module Suspicion_matrix = Qs_core.Suspicion_matrix

type payload = { matrix : string; epoch : int; extra : string }

type msg =
  | State_req of { rid : int }
  | State_resp of { rid : int; payload : payload }
  | State_push of { payload : payload }
  | State_delta of { delta : string }
  | Delta_ack of { acks : (int * int) list }

type config = {
  n : int;
  needed : int;
  retry_every : Stime.t option;
  backoff : float;
  max_retries : int;
  gossip_every : Stime.t option;
}

let default_config ~n =
  {
    n;
    needed = 1;
    retry_every = Some (Stime.of_ms 50);
    backoff = 2.0;
    max_retries = 8;
    gossip_every = None;
  }

let validate_config c =
  if c.n <= 1 then invalid_arg "Rejoin: need at least two processes";
  if c.needed < 1 || c.needed > c.n - 1 then
    invalid_arg "Rejoin: needed must be in [1, n-1]";
  if c.backoff < 1.0 then invalid_arg "Rejoin: backoff must be >= 1.0";
  if c.max_retries < 0 then invalid_arg "Rejoin: max_retries must be >= 0";
  (match c.retry_every with
  | Some d when Stime.compare d Stime.zero <= 0 ->
    invalid_arg "Rejoin: retry_every must be positive"
  | _ -> ());
  match c.gossip_every with
  | Some d when Stime.compare d Stime.zero <= 0 ->
    invalid_arg "Rejoin: gossip_every must be positive"
  | _ -> ()

(* Attached delta-gossip engine: when present, gossip ticks ship per-peer
   deltas, with every [full_every]-th tick broadcasting the usual full
   [State_push] as the anti-entropy backstop. *)
type delta_link = {
  engine : Qs_core.Delta.t;
  on_merge : unit -> unit;
  full_every : int;
  mutable ticks : int;
}

type t = {
  sim : Sim.t;
  config : config;
  me : int;
  collect : unit -> payload;
  adopt : matrix:Suspicion_matrix.t -> epoch:int -> extra:string -> unit;
  send : dst:int -> msg -> unit;
  mutable rid : int;
  mutable rejoining : bool;
  mutable responded : int list;
  (* Validated payloads received while rejoining, newest first. Adoption is
     deferred to completion so a non-completing response (needed > 1, or a
     gossip push racing the reply) cannot wake the dormant selector inside
     the monitor's stale-state window; if the rejoin never completes they
     are simply dropped — staying dormant is the safe failure mode. *)
  mutable pending : payload list;
  mutable retries : int;
  mutable completed : int;
  mutable bad_payloads : int;
  mutable gossip_on : bool;
  mutable delta : delta_link option;
  mutable gossip_bytes : int; (* payload bytes shipped by gossip ticks *)
  mutable gave_up : int;
  m_reqs : Metrics.counter;
  m_resps : Metrics.counter;
  m_retries : Metrics.counter;
  m_rejoins : Metrics.counter;
  m_bad : Metrics.counter;
  m_gave_up : Metrics.counter;
  g_attempts : Metrics.gauge;
}

let create ~sim config ~me ~collect ~adopt ~send () =
  validate_config config;
  if me < 0 || me >= config.n then invalid_arg "Rejoin.create: me out of range";
  let labels = [ ("p", string_of_int me) ] in
  {
    sim;
    config;
    me;
    collect;
    adopt;
    send;
    rid = 0;
    rejoining = false;
    responded = [];
    pending = [];
    retries = 0;
    completed = 0;
    bad_payloads = 0;
    gossip_on = false;
    delta = None;
    gossip_bytes = 0;
    gave_up = 0;
    m_reqs = Metrics.counter ~labels "rec_state_reqs_total";
    m_resps = Metrics.counter ~labels "rec_state_resps_total";
    m_retries = Metrics.counter ~labels "rec_retries_total";
    m_rejoins = Metrics.counter ~labels "rec_rejoins_total";
    m_bad = Metrics.counter ~labels "rec_bad_payloads_total";
    m_gave_up = Metrics.counter ~labels "rec_gave_up_total";
    g_attempts = Metrics.gauge ~labels "rec_round_attempts";
  }

let broadcast t msg =
  for dst = 0 to t.config.n - 1 do
    if dst <> t.me then t.send ~dst msg
  done

let request t =
  Metrics.inc t.m_reqs;
  broadcast t (State_req { rid = t.rid })

let rec schedule_retry t delay =
  match t.config.retry_every with
  | None -> ()
  | Some _ ->
    let rid = t.rid in
    Sim.schedule t.sim ~delay (fun () ->
        if t.rejoining && t.rid = rid then
          if t.retries < t.config.max_retries then begin
            t.retries <- t.retries + 1;
            Metrics.inc t.m_retries;
            Metrics.set t.g_attempts (float_of_int (t.retries + 1));
            request t;
            schedule_retry t
              (Stdlib.max 1
                 (int_of_float (float_of_int delay *. t.config.backoff)))
          end
          else begin
            (* Retry bound exhausted with the round still open: the process
               stays dormant (the safe failure mode), but no longer
               silently — operators see the counter, the monitor sees the
               event. An unsolicited push or a fresh [start] still heals. *)
            t.gave_up <- t.gave_up + 1;
            Metrics.inc t.m_gave_up;
            if Journal.live () then
              Journal.record
                (Journal.Rejoin_gave_up { who = t.me; retries = t.retries })
          end)

let start t =
  t.rid <- t.rid + 1;
  t.rejoining <- true;
  t.responded <- [];
  t.pending <- [];
  t.retries <- 0;
  Metrics.set t.g_attempts 1.0;
  if Journal.live () then Journal.record (Journal.Recovery_started { who = t.me });
  request t;
  match t.config.retry_every with
  | None -> ()
  | Some d -> schedule_retry t d

let adopt_one t (p : payload) =
  (* Already validated when buffered; re-decoding is cheap and keeps the
     pending list immutable (snapshot-friendly). *)
  t.adopt ~matrix:(Codec.decode_matrix p.matrix) ~epoch:p.epoch ~extra:p.extra

(* Decode before anything else: a corrupt response must neither complete
   the rejoin nor touch protocol state. While rejoining, valid payloads are
   buffered; at completion the journal gets Recovery_completed {e first},
   then every buffered payload is adopted (the merge is a join, so arrival
   order is irrelevant) — any Quorum_issued the re-evaluation emits lands
   after Recovery_completed, outside the monitor's stale-state window.
   Outside a rejoin, payloads are adopted immediately: that is the normal
   anti-entropy path. *)
let absorb_payload t ~src ~completes payload =
  let valid =
    payload.epoch >= 1
    && match Codec.decode_matrix payload.matrix with
       | (_ : Suspicion_matrix.t) -> true
       | exception Codec.Corrupt _ -> false
  in
  if not valid then begin
    t.bad_payloads <- t.bad_payloads + 1;
    Metrics.inc t.m_bad
  end
  else if not t.rejoining then adopt_one t payload
  else begin
    t.pending <- payload :: t.pending;
    if completes && not (List.mem src t.responded) then begin
      t.responded <- src :: t.responded;
      if List.length t.responded >= t.config.needed then begin
        t.rejoining <- false;
        t.completed <- t.completed + 1;
        Metrics.inc t.m_rejoins;
        let epoch =
          List.fold_left (fun acc p -> Stdlib.max acc p.epoch) 1 t.pending
        in
        if Journal.live () then
          Journal.record
            (Journal.Recovery_completed
               { who = t.me; epoch; retries = t.retries });
        let batch = List.rev t.pending in
        t.pending <- [];
        List.iter (adopt_one t) batch
      end
    end
  end

let handle t ~src msg =
  match msg with
  | State_req { rid } ->
    (* A request is the "I lost my state" signal: whatever [src] acked
       before its crash no longer exists over there, so the delta layer must
       start over for it — otherwise those rows would never re-ship. *)
    (match t.delta with
    | Some d -> Qs_core.Delta.reset_peer d.engine ~peer:src
    | None -> ());
    Metrics.inc t.m_resps;
    t.send ~dst:src (State_resp { rid; payload = t.collect () })
  | State_resp { rid; payload } ->
    absorb_payload t ~src ~completes:(rid = t.rid) payload
  | State_push { payload } -> absorb_payload t ~src ~completes:false payload
  | State_delta { delta } -> (
    match t.delta with
    | None -> () (* no engine attached: deltas are not for this node *)
    | Some d -> (
      match Codec.decode_delta delta with
      | exception Codec.Corrupt _ ->
        t.bad_payloads <- t.bad_payloads + 1;
        Metrics.inc t.m_bad
      | packet -> (
        match Qs_core.Delta.apply d.engine packet with
        | exception Invalid_argument _ ->
          t.bad_payloads <- t.bad_payloads + 1;
          Metrics.inc t.m_bad
        | changed, ack ->
          t.send ~dst:src (Delta_ack { acks = ack.Qs_core.Delta.rows });
          (* Unlike a full State_push, a partial delta is never buffered or
             adopted: it cannot wake a dormant process ([on_merge] is the
             dormancy-respecting re-evaluation), so merging during an open
             rejoin round is safe anti-entropy. *)
          if changed then d.on_merge ())))
  | Delta_ack { acks } -> (
    match t.delta with
    | None -> ()
    | Some d -> Qs_core.Delta.apply_ack d.engine ~peer:src { Qs_core.Delta.rows = acks })

(* One immediate unsolicited push — the graceful-leave anti-entropy
   handoff: a departing process ships its whole matrix to every peer so no
   suspicion it uniquely holds dies with it. *)
let push_full t =
  let payload = t.collect () in
  t.gossip_bytes <- t.gossip_bytes + ((t.config.n - 1) * String.length payload.matrix);
  broadcast t (State_push { payload })

let push_deltas t d =
  for dst = 0 to t.config.n - 1 do
    if dst <> t.me then
      match Qs_core.Delta.make_packet d.engine ~peer:dst with
      | None -> () (* peer fully acked: no message, no allocation *)
      | Some packet ->
        let s = Codec.encode_delta packet in
        t.gossip_bytes <- t.gossip_bytes + String.length s;
        t.send ~dst (State_delta { delta = s })
  done

(* Low-rate anti-entropy: periodically push our own state to every peer.
   Merges are idempotent, so the only cost is bandwidth; the benefit is
   that processes cut off for longer than any rejoin retry window (a long
   partition) still converge once connectivity returns. With a delta engine
   attached, ticks ship per-peer unacked rows and only every [full_every]-th
   tick pays for the full matrix. *)
let rec schedule_gossip t delay =
  Sim.schedule t.sim ~delay (fun () ->
      if t.gossip_on then begin
        (match t.delta with
        | None -> push_full t
        | Some d ->
          d.ticks <- d.ticks + 1;
          if d.ticks mod d.full_every = 0 then push_full t else push_deltas t d);
        schedule_gossip t delay
      end)

let set_delta t engine ~on_merge ~full_every =
  if full_every < 1 then invalid_arg "Rejoin.set_delta: full_every must be >= 1";
  if Qs_core.Delta.n engine <> t.config.n || Qs_core.Delta.me engine <> t.me then
    invalid_arg "Rejoin.set_delta: engine/process mismatch";
  t.delta <- Some { engine; on_merge; full_every; ticks = 0 }

let push_now t = push_full t

let gossip_bytes t = t.gossip_bytes

let start_gossip t =
  match t.config.gossip_every with
  | None -> invalid_arg "Rejoin.start_gossip: config has no gossip_every"
  | Some d ->
    if not t.gossip_on then begin
      t.gossip_on <- true;
      schedule_gossip t d
    end

let stop_gossip t = t.gossip_on <- false

let rejoining t = t.rejoining

let retries t = t.retries

let completed_rounds t = t.completed

let gave_up_rounds t = t.gave_up

let bad_payloads t = t.bad_payloads

(* ------------------------------------------------------------------ *)
(* Model-checker hooks *)

let encode_payload p =
  Printf.sprintf "%d|%d:%s|%d:%s" p.epoch
    (String.length p.matrix) p.matrix
    (String.length p.extra) p.extra

let encode_msg = function
  | State_req { rid } -> Printf.sprintf "REQ|%d" rid
  | State_resp { rid; payload } ->
    Printf.sprintf "RESP|%d|%s" rid (encode_payload payload)
  | State_push { payload } -> Printf.sprintf "PUSH|%s" (encode_payload payload)
  | State_delta { delta } -> Printf.sprintf "DELTA|%d:%s" (String.length delta) delta
  | Delta_ack { acks } ->
    Printf.sprintf "ACK|%s"
      (String.concat ","
         (List.map (fun (l, v) -> Printf.sprintf "%d=%d" l v) acks))

let fingerprint t =
  Printf.sprintf "%d|%b|%s|%d|%d|%d|%d|%s" t.rid t.rejoining
    (String.concat "," (List.map string_of_int (List.sort compare t.responded)))
    t.retries t.completed t.bad_payloads t.gave_up
    (String.concat ";" (List.map encode_payload (List.rev t.pending)))

(* [fingerprint] after relabeling process identities through [perm]
   (old pid -> new pid): responders are mapped (the list is rendered sorted,
   so the result is canonical), and each buffered payload's encoded matrix
   is rewritten by the caller-supplied [matrix] transform — the codec lives
   above this module, so conjugating an encoded matrix does too. Buffer
   order is preserved: arrival positions are schedule positions, which the
   relabeled execution shares. *)
let fingerprint_perm t ~perm ~matrix =
  let permuted p = { p with matrix = matrix p.matrix } in
  Printf.sprintf "%d|%b|%s|%d|%d|%d|%d|%s" t.rid t.rejoining
    (String.concat ","
       (List.map string_of_int (List.sort compare (List.map perm t.responded))))
    t.retries t.completed t.bad_payloads t.gave_up
    (String.concat ";" (List.map (fun p -> encode_payload (permuted p)) (List.rev t.pending)))

type snapshot = {
  s_rid : int;
  s_rejoining : bool;
  s_responded : int list;
  s_pending : payload list;
  s_retries : int;
  s_completed : int;
  s_bad : int;
  s_gave_up : int;
}

let snapshot t =
  {
    s_rid = t.rid;
    s_rejoining = t.rejoining;
    s_responded = t.responded;
    s_pending = t.pending;
    s_retries = t.retries;
    s_completed = t.completed;
    s_bad = t.bad_payloads;
    s_gave_up = t.gave_up;
  }

let restore t s =
  t.rid <- s.s_rid;
  t.rejoining <- s.s_rejoining;
  t.responded <- s.s_responded;
  t.pending <- s.s_pending;
  t.retries <- s.s_retries;
  t.completed <- s.s_completed;
  t.bad_payloads <- s.s_bad;
  t.gave_up <- s.s_gave_up
