(** Rejoin protocol: CRDT state transfer for recovering processes.

    A process restarting after an amnesia crash broadcasts [StateReq];
    every peer answers [StateResp] carrying its encoded [suspected] matrix,
    epoch, and an opaque stack-specific blob (XPaxos ships its committed
    log prefix there). The rejoiner max-merges each response — the matrix
    is a join-semilattice, so responses commute and repeat-merges are
    no-ops — fast-forwards its epoch, and declares recovery complete after
    [needed] distinct valid responses. Unanswered requests are rebroadcast
    with exponential backoff up to [max_retries].

    The transport is a callback, so the same engine runs over a plain
    simulated {!Qs_sim.Network} (chaos campaigns give each stack a parallel
    recovery plane) and over the model checker's controlled network (where
    every interleaving of requests and responses is explored).

    A periodic low-rate anti-entropy variant ([State_push], see
    {!start_gossip}) keeps long-partitioned processes converging even when
    they never crash: pushes are just unsolicited merges. *)

type payload = { matrix : string; epoch : int; extra : string }
(** [matrix] is {!Codec.encode_matrix} output — responses cross the wire
    encoded, so a corrupt or malicious blob is caught by the codec, not
    absorbed. [extra] is an opaque protocol-specific supplement (empty for
    bare Algorithm 1/2 stacks). *)

type msg =
  | State_req of { rid : int }
  | State_resp of { rid : int; payload : payload }
  | State_push of { payload : payload }  (** unsolicited anti-entropy *)
  | State_delta of { delta : string }
      (** {!Codec.encode_delta} output: rows changed since the receiver's
          last ack (delta-state gossip, see {!set_delta}) *)
  | Delta_ack of { acks : (int * int) list }
      (** per-row version acknowledgements, in the {e sender's} version
          space *)

type config = {
  n : int;
  needed : int;  (** distinct valid responses that complete a rejoin *)
  retry_every : Qs_sim.Stime.t option;
      (** initial rebroadcast delay; [None] disables timer-driven retries
          (the model checker's frozen-time mode) *)
  backoff : float;  (** retry delay multiplier, >= 1 *)
  max_retries : int;
  gossip_every : Qs_sim.Stime.t option;  (** {!start_gossip} period *)
}

val default_config : n:int -> config
(** needed = 1, retry every 50 ms doubling, 8 retries, no gossip. *)

type t

val create :
  sim:Qs_sim.Sim.t ->
  config ->
  me:int ->
  collect:(unit -> payload) ->
  adopt:
    (matrix:Qs_core.Suspicion_matrix.t -> epoch:int -> extra:string -> unit) ->
  send:(dst:int -> msg -> unit) ->
  unit ->
  t
(** [collect] snapshots the local state for answering peers; [adopt] is the
    CRDT join applied to each valid incoming payload (already decoded);
    [send] is the transport. *)

val start : t -> unit
(** Begin a rejoin round: journal [Recovery_started], broadcast
    [State_req], arm retries. While the round is open, valid payloads are
    {e buffered}, not adopted; at completion [Recovery_completed] is
    journaled first and then the whole buffer is adopted (a join, so order
    is irrelevant) — quorums issued by the re-evaluation land outside the
    monitor's stale-state window, and a round that never completes leaves
    the process dormant rather than half-recovered. *)

val handle : t -> src:int -> msg -> unit
(** Feed a received rejoin-plane message. Requests are answered
    unconditionally (serving state costs nothing and merges are safe);
    responses and pushes are decoded, counted as [bad_payloads] and ignored
    when corrupt, buffered during an open rejoin round, and otherwise
    adopted immediately — even late ones for an old round: merging extra
    state is free. *)

val start_gossip : t -> unit
(** Start the periodic [State_push] broadcast ([Invalid_argument] if the
    config has no [gossip_every]). *)

val push_now : t -> unit
(** Broadcast one unsolicited full [State_push] immediately, independent of
    the gossip timer — the graceful-leave anti-entropy handoff: a departing
    process ships its matrix so no suspicion it uniquely holds is lost with
    its removal. *)

val stop_gossip : t -> unit

val set_delta :
  t -> Qs_core.Delta.t -> on_merge:(unit -> unit) -> full_every:int -> unit
(** Switch gossip to delta-state mode: each tick ships every peer only the
    rows it has not acked ([State_delta], answered by [Delta_ack]), and
    every [full_every]-th tick broadcasts the usual full [State_push] as
    the anti-entropy backstop. [on_merge] runs after a delta changed the
    matrix — it must respect dormancy (e.g. [Quorum_select.reevaluate]):
    deltas, unlike full states, never wake a wiped process. An incoming
    [State_req] resets the requester's acked versions, so a rejoining
    amnesiac re-receives everything. *)

val gossip_bytes : t -> int
(** Payload bytes shipped by gossip ticks so far (full pushes count the
    encoded matrix once per destination; deltas their encoded size) — the
    bytes-gossiped metric of the scaling experiment. *)

val rejoining : t -> bool

val retries : t -> int
(** Rebroadcasts in the current/last round. *)

val completed_rounds : t -> int

val gave_up_rounds : t -> int
(** Rejoin rounds that exhausted the retry bound without completing: the
    process went dormant for good unless revived by an unsolicited push or
    a fresh {!start}. Each such round journals [Rejoin_gave_up] and bumps
    the [rec_gave_up_total] counter (attempt counts live in
    [rec_retries_total] and the [rec_round_attempts] gauge). *)

val bad_payloads : t -> int
(** Responses rejected by the codec. *)

(** {2 Model-checker hooks} *)

val encode_msg : msg -> string
(** Canonical bytes for choice-point fingerprints. *)

val fingerprint : t -> string

val fingerprint_perm :
  t -> perm:(int -> int) -> matrix:(string -> string) -> string
(** {!fingerprint} of the state relabeled through the pid bijection [perm]:
    responders mapped (rendered sorted, hence canonical), each buffered
    payload's encoded matrix rewritten by [matrix] (the codec-level
    conjugation lives with the caller). Supports the model checker's
    symmetry-canonical fingerprints. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
