type t = {
  durable : (string, string) Hashtbl.t;
  pending : (string, string) Hashtbl.t;
  fsync_every : int option;
  mutable unflushed : int;
  mutable puts : int;
  mutable fsyncs : int;
  mutable crashes : int;
  mutable lost : int;
}

let create ?fsync_every () =
  (match fsync_every with
  | Some k when k <= 0 -> invalid_arg "Store.create: fsync_every must be positive"
  | _ -> ());
  {
    durable = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    fsync_every;
    unflushed = 0;
    puts = 0;
    fsyncs = 0;
    crashes = 0;
    lost = 0;
  }

let fsync t =
  Hashtbl.iter (fun k v -> Hashtbl.replace t.durable k v) t.pending;
  Hashtbl.reset t.pending;
  t.unflushed <- 0;
  t.fsyncs <- t.fsyncs + 1

let put t key value =
  Hashtbl.replace t.pending key value;
  t.puts <- t.puts + 1;
  t.unflushed <- t.unflushed + 1;
  match t.fsync_every with
  | Some k when t.unflushed >= k -> fsync t
  | _ -> ()

let get t key =
  match Hashtbl.find_opt t.pending key with
  | Some v -> Some v
  | None -> Hashtbl.find_opt t.durable key

let durable_get t key = Hashtbl.find_opt t.durable key

let crash t =
  t.lost <- t.lost + Hashtbl.length t.pending;
  Hashtbl.reset t.pending;
  t.unflushed <- 0;
  t.crashes <- t.crashes + 1

let pending_writes t = Hashtbl.length t.pending

let puts t = t.puts

let fsyncs t = t.fsyncs

let crashes t = t.crashes

let lost_writes t = t.lost

let bindings t =
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.durable;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) t.pending;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort compare
  |> List.filter_map (fun k -> Option.map (fun v -> (k, v)) (get t k))

type snapshot = {
  s_durable : (string * string) list;
  s_pending : (string * string) list;
  s_unflushed : int;
  s_puts : int;
  s_fsyncs : int;
  s_crashes : int;
  s_lost : int;
}

let snapshot t =
  let dump h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] in
  {
    s_durable = dump t.durable;
    s_pending = dump t.pending;
    s_unflushed = t.unflushed;
    s_puts = t.puts;
    s_fsyncs = t.fsyncs;
    s_crashes = t.crashes;
    s_lost = t.lost;
  }

let restore t s =
  Hashtbl.reset t.durable;
  Hashtbl.reset t.pending;
  List.iter (fun (k, v) -> Hashtbl.replace t.durable k v) s.s_durable;
  List.iter (fun (k, v) -> Hashtbl.replace t.pending k v) s.s_pending;
  t.unflushed <- s.s_unflushed;
  t.puts <- s.s_puts;
  t.fsyncs <- s.s_fsyncs;
  t.crashes <- s.s_crashes;
  t.lost <- s.s_lost
