(** Deterministic in-simulation durable key/value store.

    Models the one distinction crash-recovery hinges on: state written but
    not yet fsynced dies with the process. A {!put} lands in a volatile
    pending overlay; {!fsync} makes the overlay durable; {!crash} (what the
    amnesia injector calls) drops the overlay, so a recovered process reads
    back exactly its last fsync point. Partially-flushed state is therefore
    expressible: write twice, fsync once, crash — the second write is gone.

    Purely in-memory and deterministic: no filesystem, no wall clock, so
    simulated runs and the model checker stay reproducible. *)

type t

val create : ?fsync_every:int -> unit -> t
(** Empty store. With [fsync_every = k], every k-th unflushed {!put}
    triggers an automatic {!fsync} (a write-through store is [k = 1]);
    without it, durability points are wholly the caller's. *)

val put : t -> string -> string -> unit
(** Buffer a write in the volatile overlay (visible to {!get}, lost on
    {!crash} until the next {!fsync}). *)

val get : t -> string -> string option
(** Read through the overlay: the freshest write, flushed or not — what the
    running process sees. *)

val durable_get : t -> string -> string option
(** Read the durable layer only — what a recovery would see. *)

val fsync : t -> unit
(** Flush the overlay into the durable layer. *)

val crash : t -> unit
(** Drop all unflushed writes (counting them), as a power loss would. *)

(** {2 Counters} *)

val pending_writes : t -> int

val puts : t -> int

val fsyncs : t -> int

val crashes : t -> int

val lost_writes : t -> int
(** Total writes dropped by {!crash} calls. *)

val bindings : t -> (string * string) list
(** Overlay-merged view, sorted by key (for debugging and fingerprints). *)

(** {2 Snapshot / restore} — model-checker fork support. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
