module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Journal = Qs_obs.Journal
module Monitor = Qs_faults.Monitor
module Fault = Qs_faults.Fault
module Store = Qs_recovery.Store
module Replica = Qs_xpaxos.Replica
module Xmsg = Qs_xpaxos.Xmsg

(* Loopback harness: a full XPaxos cluster over real TCP on 127.0.0.1, a
   live nemesis, and the online invariant monitor verdicting the run — the
   end-to-end proof that the simulated stack survives contact with sockets,
   threads and the wall clock. *)

module Wire = struct
  type msg = Envelope.t

  let encode = Envelope.encode

  let decode = Envelope.decode
end

module T = Tcp.Make (Wire)
module N = Node.Make (T)

type report = {
  n : int;
  f : int;
  requests_submitted : int;
  committed : int;  (** requests executed by at least [n - f] replicas *)
  prefix_agreement : bool;  (** pairwise over the correct replicas *)
  violations : Monitor.violation list;
  monitor_checks : int;
  commits_observed : int;
  recoveries_completed : int;
  max_view : int;
  commit_latency_ns : int list;  (** per committed request, submit → global commit *)
  stats : Tcp.stats array;
  nemesis_installed : int;
  nemesis_unsupported : int;
}

let loopback_addrs ~n ?base_port () =
  match base_port with
  | Some p ->
    Array.init n (fun i ->
        Unix.ADDR_INET (Unix.inet_addr_loopback, p + i))
  | None ->
    (* Bind n ephemeral listeners to learn free ports, then release them.
       A race against other processes is possible but the window is tiny
       and start retries surface it as a bind failure, not silent havoc. *)
    let socks =
      Array.init n (fun _ ->
          let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt s Unix.SO_REUSEADDR true;
          Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
          s)
    in
    let addrs =
      Array.map
        (fun s ->
          match Unix.getsockname s with
          | Unix.ADDR_INET (_, port) ->
            Unix.ADDR_INET (Unix.inet_addr_loopback, port)
          | addr -> addr)
        socks
    in
    Array.iter Unix.close socks;
    addrs

let is_prefix shorter longer =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (shorter, longer)

let pairwise_prefix_consistent histories =
  let rec go = function
    | [] -> true
    | h :: rest ->
      List.for_all
        (fun h' ->
          if List.length h <= List.length h' then is_prefix h h'
          else is_prefix h' h)
        rest
      && go rest
  in
  go histories

let run ?(seed = 1L) ?base_port ?(mode = Replica.Quorum_selection) ?(requests = 5)
    ?(request_timeout_ms = 4000) ?(duration_ms = 0) ?(schedule = [])
    ?(settle_ms = 300) ?(probe_every_ms = 100) ~n ~f () =
  if n < 2 || f < 0 || n <= 2 * f then
    invalid_arg "Cluster.run: need n > 2f >= 0 and n >= 2";
  let addrs = loopback_addrs ~n ?base_port () in
  let fabric =
    T.create ~addrs ~seed ~keepalive_every:(Stime.of_ms 50)
      ~reconnect_initial:(Stime.of_ms 5)
      ~reconnect_strategy:
        (Qs_fd.Timeout.Exponential { factor = 2.0; max = Stime.of_ms 500 })
      ~reconnect_jitter:0.2 ()
  in
  let clock = T.clock fabric in
  (* Observability: the shared journal on wall-clock milliseconds, with the
     monitor subscribed before any node exists. All recording and all
     subscriber callbacks happen under the core lock. *)
  Journal.clear ();
  Journal.set_clock (fun () -> Stime.to_ms (Wallclock.now clock));
  Journal.set_enabled true;
  let blamed = Fault.blamed ~n schedule in
  let correct =
    List.filter (fun p -> not (List.mem p blamed)) (List.init n (fun i -> i))
  in
  let in_model =
    match Fault.classify ~n ~f schedule with
    | Fault.In_model _ -> true
    | Fault.Out_of_model _ -> false
  in
  let monitor =
    Monitor.create
      {
        Monitor.n;
        f;
        correct;
        quorum_bound =
          (match mode with
           | Replica.Quorum_selection -> Some (Monitor.theorem3 ~f)
           | Replica.Enumeration -> None);
        bound_gauge = None;
        settle = Stime.of_ms 500;
        rejoin_retry_bound = (if in_model then Some 8 else None);
      }
  in
  let config =
    {
      Replica.n;
      f;
      mode;
      initial_timeout = Stime.of_ms 150;
      timeout_strategy =
        Qs_fd.Timeout.Exponential { factor = 2.0; max = Stime.of_ms 2000 };
    }
  in
  let auth = Qs_crypto.Auth.create n in
  for i = 0 to n - 1 do
    T.start fabric ~me:i
  done;
  (* Execution accounting: on_execute runs on the executing node's driver
     thread under the core lock, so plain tables are safe. *)
  let executions : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let commit_walltime : (int * int, Stime.t) Hashtbl.t = Hashtbl.create 64 in
  let quorum = n - f in
  let nodes =
    Array.init n (fun me ->
        N.create ~config ~me ~auth ~transport:fabric ~store:(Store.create ())
          ~on_execute:(fun ~slot:_ request ->
            let key = (request.Xmsg.client, request.Xmsg.rid) in
            let cell =
              match Hashtbl.find_opt executions key with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.add executions key c;
                c
            in
            if not (List.mem me !cell) then begin
              cell := me :: !cell;
              if
                List.length !cell = quorum
                && not (Hashtbl.mem commit_walltime key)
              then Hashtbl.add commit_walltime key (Wallclock.now clock)
            end)
          ())
  in
  Array.iter N.start_gossip nodes;
  (* Coordinator: a private timer wheel advanced to the wall clock by the
     calling thread, carrying the monitor's history probe and the nemesis
     phase transitions. *)
  let coord = Sim.create ~seed:(Int64.add seed 104729L) () in
  Monitor.attach_history_probe monitor ~sim:coord
    ~every:(Stime.of_ms probe_every_ms) (fun () ->
      List.map
        (fun p ->
          ( p,
            List.map
              (fun (r : Xmsg.request) -> (r.Xmsg.client, r.Xmsg.rid))
              (Replica.executed (N.replica nodes.(p))) ))
        correct);
  let nemesis =
    Nemesis.install ~sim:coord
      ~controls:
        {
          Nemesis.set_policy = (fun ~src ~dst p -> T.set_policy fabric ~src ~dst p);
          kill_links = (fun ~me -> T.kill_links fabric ~me);
          set_refusing = (fun ~me r -> T.set_refusing fabric ~me r);
          set_paused = (fun ~me p -> T.set_paused fabric ~me p);
          amnesia = (fun p -> N.crash_amnesia nodes.(p));
        }
      ~n schedule
  in
  let tick () =
    Corelock.with_lock (fun () -> Sim.advance_to coord ~at:(Wallclock.now clock));
    Thread.delay 0.002
  in
  let wait_until ?(deadline = max_int) pred =
    let rec go () =
      let done_ = Corelock.with_lock pred in
      if (not done_) && Wallclock.now clock < deadline then begin
        tick ();
        go ()
      end
      else done_
    in
    go ()
  in
  (* Workload: one client, sequential requests, each broadcast to every
     node (an XPaxos client broadcasts after a timeout) and rebroadcast
     periodically until globally committed — the client-side retransmission
     the at-most-once transport requires. *)
  let committed = ref 0 in
  let latencies = ref [] in
  for k = 0 to requests - 1 do
    let request = { Xmsg.client = 0; rid = k; op = Printf.sprintf "op-%d" k } in
    let submitted_at = Wallclock.now clock in
    let deadline = submitted_at + Stime.of_ms request_timeout_ms in
    let submit_all () = Array.iter (fun node -> N.submit node request) nodes in
    submit_all ();
    let resubmit_every = Stime.of_ms 200 in
    let next_resubmit = ref (submitted_at + resubmit_every) in
    let ok =
      wait_until ~deadline (fun () ->
          if Wallclock.now clock >= !next_resubmit then begin
            next_resubmit := Wallclock.now clock + resubmit_every;
            submit_all ()
          end;
          Hashtbl.mem commit_walltime (0, k))
    in
    if ok then begin
      incr committed;
      let at = Hashtbl.find commit_walltime (0, k) in
      latencies := ((at - submitted_at) * 1000) :: !latencies
    end
  done;
  (* Let scheduled fault phases finish playing out, then settle. *)
  let horizon =
    List.fold_left
      (fun acc (ph : Fault.phase) ->
        let stop = match ph.Fault.stop with Some s -> s | None -> ph.Fault.start in
        Stime.max acc (Stime.max ph.Fault.start stop))
      0 schedule
  in
  let end_at =
    Stime.max (Wallclock.now clock + Stime.of_ms settle_ms)
      (Stime.max horizon (Stime.of_ms duration_ms) + Stime.of_ms settle_ms)
  in
  ignore (wait_until ~deadline:end_at (fun () -> false) : bool);
  let report =
    Corelock.with_lock (fun () ->
        Sim.advance_to coord ~at:(Wallclock.now clock);
        if in_model then
          Monitor.check_recovered monitor
            ~at:(Stime.to_ms (Wallclock.now clock));
        let histories =
          List.map
            (fun p ->
              List.map
                (fun (r : Xmsg.request) -> (r.Xmsg.client, r.Xmsg.rid))
                (Replica.executed (N.replica nodes.(p))))
            correct
        in
        {
          n;
          f;
          requests_submitted = requests;
          committed = !committed;
          prefix_agreement = pairwise_prefix_consistent histories;
          violations = Monitor.violations monitor;
          monitor_checks = Monitor.checks_run monitor;
          commits_observed = Monitor.commits_observed monitor;
          recoveries_completed =
            Array.fold_left
              (fun acc node ->
                acc + Qs_recovery.Rejoin.completed_rounds (N.rejoin node))
              0 nodes;
          max_view =
            Array.fold_left
              (fun acc node -> max acc (Replica.view (N.replica node)))
              0 nodes;
          commit_latency_ns = List.rev !latencies;
          stats = Array.init n (fun i -> T.stats fabric ~me:i);
          nemesis_installed = Nemesis.installed nemesis;
          nemesis_unsupported = Nemesis.unsupported nemesis;
        })
  in
  for i = 0 to n - 1 do
    T.stop fabric ~me:i
  done;
  Monitor.detach monitor;
  Journal.set_enabled false;
  report

let report_to_json (r : report) =
  let module Json = Qs_obs.Json in
  let stats_json (s : Tcp.stats) =
    Json.Obj
      [
        ("sent", Json.Int s.Tcp.sent);
        ("delivered", Json.Int s.Tcp.delivered);
        ("shed", Json.Int s.Tcp.shed);
        ("dup_dropped", Json.Int s.Tcp.dup_dropped);
        ("corrupt_rejected", Json.Int s.Tcp.corrupt_rejected);
        ("nemesis_dropped", Json.Int s.Tcp.nemesis_dropped);
        ("reconnects", Json.Int s.Tcp.reconnects);
        ("keepalives_seen", Json.Int s.Tcp.keepalives_seen);
      ]
  in
  Json.Obj
    [
      ("n", Json.Int r.n);
      ("f", Json.Int r.f);
      ("requests_submitted", Json.Int r.requests_submitted);
      ("committed", Json.Int r.committed);
      ("prefix_agreement", Json.Bool r.prefix_agreement);
      ("monitor_violations", Json.Int (List.length r.violations));
      ( "violations",
        Json.List (List.map Monitor.violation_to_json r.violations) );
      ("monitor_checks", Json.Int r.monitor_checks);
      ("commits_observed", Json.Int r.commits_observed);
      ("recoveries_completed", Json.Int r.recoveries_completed);
      ("max_view", Json.Int r.max_view);
      ( "commit_latency_ns",
        Json.List (List.map (fun x -> Json.Int x) r.commit_latency_ns) );
      ("stats", Json.List (Array.to_list (Array.map stats_json r.stats)));
      ("nemesis_installed", Json.Int r.nemesis_installed);
      ("nemesis_unsupported", Json.Int r.nemesis_unsupported);
    ]
