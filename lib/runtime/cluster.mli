(** Loopback cluster harness: XPaxos over real TCP, verdicted live.

    Runs [n] full runtime nodes ({!Node} over {!Tcp.Make}) on 127.0.0.1, a
    sequential client workload with client-side rebroadcast, a {!Nemesis}
    playing a fault schedule against the live sockets, and the online
    {!Qs_faults.Monitor} subscribed to the shared journal on wall-clock
    time — so a real run gets the same invariant verdicts as a simulated
    one. Used by the [runtime-chaos] CLI command, the bench [runtime]
    section, the CI smoke job and the parity tests. *)

module Wire : Tcp.WIRE with type msg = Envelope.t

module T : module type of Tcp.Make (Wire)

module N : module type of Node.Make (T)

type report = {
  n : int;
  f : int;
  requests_submitted : int;
  committed : int;  (** requests executed by at least [n - f] replicas *)
  prefix_agreement : bool;  (** pairwise over the correct replicas *)
  violations : Qs_faults.Monitor.violation list;
  monitor_checks : int;
  commits_observed : int;
  recoveries_completed : int;
  max_view : int;
  commit_latency_ns : int list;  (** submit → global commit, wall ns *)
  stats : Tcp.stats array;
  nemesis_installed : int;
  nemesis_unsupported : int;
}

val loopback_addrs : n:int -> ?base_port:int -> unit -> Unix.sockaddr array
(** [n] loopback addresses: consecutive from [base_port] when given,
    otherwise fresh ephemeral ports learned by transient binds. *)

val run :
  ?seed:int64 ->
  ?base_port:int ->
  ?mode:Qs_xpaxos.Replica.mode ->
  ?requests:int ->
  ?request_timeout_ms:int ->
  ?duration_ms:int ->
  ?schedule:Qs_faults.Fault.schedule ->
  ?settle_ms:int ->
  ?probe_every_ms:int ->
  n:int ->
  f:int ->
  unit ->
  report
(** Run the whole campaign and tear everything down. Defaults: quorum
    selection mode, 5 requests with a 4 s per-request commit deadline,
    empty schedule, 300 ms settle. [duration_ms] extends the run past the
    workload (to let open-ended fault phases act). The monitor's
    end-of-run recovery check runs only for in-model schedules, mirroring
    the chaos campaign's gating. [Invalid_argument] unless [n > 2f]. *)

val report_to_json : report -> Qs_obs.Json.t
