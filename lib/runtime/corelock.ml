(* One process-wide lock serializing every touch of shared protocol state:
   replica cores, rejoin engines, the journal and its subscribers (the
   invariant monitor), metrics. The repository's protocol and observability
   layers are single-threaded by design (the simulator runs handlers to
   completion); the runtime keeps that contract by making each endpoint's
   driver thread take this lock around its execution slice, while I/O
   threads (accept/read/write/connect) block in syscalls outside it. Under
   systhreads only one OCaml thread runs at a time anyway, so the lock
   costs nothing measurable — it buys atomicity of whole handler slices,
   not parallelism. *)

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
