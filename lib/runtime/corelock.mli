(** The runtime's single core lock.

    Every execution slice that may touch shared protocol or observability
    state — an endpoint driver delivering messages and firing timers, the
    coordinator's monitor probe, a stats snapshot — runs under this one
    process-wide mutex. I/O threads block in syscalls outside it and only
    hand work over through {!Mailbox}, so the protocol layers keep the
    simulator's run-to-completion discipline without becoming thread-aware
    themselves. *)

val with_lock : (unit -> 'a) -> 'a
(** Run [f] holding the core lock (released on exception). Not reentrant. *)
