module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin
module Xmsg = Qs_xpaxos.Xmsg

(* One envelope type per XPaxos runtime node, multiplexing the protocol
   plane and the rejoin plane over a single transport — the runtime
   counterpart of the chaos harness's parallel recovery network. Codecs are
   hand-written over the Codec W/R primitives (the same discipline as the
   durable-state codecs): explicit field-by-field layouts, versioned frame,
   checksum, and Corrupt on anything unexpected — never Marshal. *)

type t = Proto of Xmsg.t | Rejoin of Rejoin.msg

let tag = "QENV"

let version = 1

(* --- XPaxos message layout --- *)

let w_request w (r : Xmsg.request) =
  Codec.W.int w r.Xmsg.client;
  Codec.W.int w r.Xmsg.rid;
  Codec.W.str w r.Xmsg.op

let r_request r =
  let client = Codec.R.int r in
  let rid = Codec.R.int r in
  let op = Codec.R.str r in
  { Xmsg.client; rid; op }

let w_signed_prepare w (sp : Xmsg.signed_prepare) =
  Codec.W.int w sp.Xmsg.prepare.Xmsg.view;
  Codec.W.int w sp.Xmsg.prepare.Xmsg.slot;
  w_request w sp.Xmsg.prepare.Xmsg.request;
  Codec.W.str w sp.Xmsg.psig

let r_signed_prepare r =
  let view = Codec.R.int r in
  let slot = Codec.R.int r in
  let request = r_request r in
  let psig = Codec.R.str r in
  { Xmsg.prepare = { Xmsg.view; slot; request }; psig }

let w_entries w entries =
  Codec.W.int w (List.length entries);
  List.iter
    (fun (e : Xmsg.entry) ->
      Codec.W.int w e.Xmsg.eview;
      Codec.W.int w e.Xmsg.eslot;
      w_request w e.Xmsg.erequest;
      Codec.W.bool w e.Xmsg.ecommitted;
      Codec.W.str w e.Xmsg.epsig)
    entries

let r_entries r =
  let count = Codec.R.int r in
  if count > 1_000_000 then raise (Codec.Corrupt "QENV: entry count");
  List.init count (fun _ ->
      let eview = Codec.R.int r in
      let eslot = Codec.R.int r in
      let erequest = r_request r in
      let ecommitted = Codec.R.bool r in
      let epsig = Codec.R.str r in
      { Xmsg.eview; eslot; erequest; ecommitted; epsig })

let w_row w row =
  Codec.W.int w (Array.length row);
  Array.iter (fun v -> Codec.W.int w v) row

let r_row r =
  let len = Codec.R.int r in
  if len > 65536 then raise (Codec.Corrupt "QENV: row length");
  Array.init len (fun _ -> Codec.R.int r)

let w_body w (b : Xmsg.body) =
  match b with
  | Xmsg.Prepare sp ->
    Codec.W.int w 0;
    w_signed_prepare w sp
  | Xmsg.Commit { cview; cslot; csp } ->
    Codec.W.int w 1;
    Codec.W.int w cview;
    Codec.W.int w cslot;
    w_signed_prepare w csp
  | Xmsg.Suspect { sview } ->
    Codec.W.int w 2;
    Codec.W.int w sview
  | Xmsg.View_change { vview; vlog } ->
    Codec.W.int w 3;
    Codec.W.int w vview;
    w_entries w vlog
  | Xmsg.New_view { nview; nlog } ->
    Codec.W.int w 4;
    Codec.W.int w nview;
    w_entries w nlog
  | Xmsg.Qsel m ->
    Codec.W.int w 5;
    Codec.W.int w m.Qs_core.Msg.update.Qs_core.Msg.owner;
    w_row w m.Qs_core.Msg.update.Qs_core.Msg.row;
    Codec.W.str w m.Qs_core.Msg.signature

let r_body r : Xmsg.body =
  match Codec.R.int r with
  | 0 -> Xmsg.Prepare (r_signed_prepare r)
  | 1 ->
    let cview = Codec.R.int r in
    let cslot = Codec.R.int r in
    let csp = r_signed_prepare r in
    Xmsg.Commit { cview; cslot; csp }
  | 2 -> Xmsg.Suspect { sview = Codec.R.int r }
  | 3 ->
    let vview = Codec.R.int r in
    let vlog = r_entries r in
    Xmsg.View_change { vview; vlog }
  | 4 ->
    let nview = Codec.R.int r in
    let nlog = r_entries r in
    Xmsg.New_view { nview; nlog }
  | 5 ->
    let owner = Codec.R.int r in
    let row = r_row r in
    let signature = Codec.R.str r in
    Xmsg.Qsel { Qs_core.Msg.update = { Qs_core.Msg.owner; row }; signature }
  | k -> raise (Codec.Corrupt (Printf.sprintf "QENV: unknown body %d" k))

(* --- Rejoin message layout --- *)

let w_payload w (p : Rejoin.payload) =
  Codec.W.str w p.Rejoin.matrix;
  Codec.W.int w p.Rejoin.epoch;
  Codec.W.str w p.Rejoin.extra

let r_payload r =
  let matrix = Codec.R.str r in
  let epoch = Codec.R.int r in
  let extra = Codec.R.str r in
  { Rejoin.matrix; epoch; extra }

let w_rejoin w (m : Rejoin.msg) =
  match m with
  | Rejoin.State_req { rid } ->
    Codec.W.int w 0;
    Codec.W.int w rid
  | Rejoin.State_resp { rid; payload } ->
    Codec.W.int w 1;
    Codec.W.int w rid;
    w_payload w payload
  | Rejoin.State_push { payload } ->
    Codec.W.int w 2;
    w_payload w payload
  | Rejoin.State_delta { delta } ->
    Codec.W.int w 3;
    Codec.W.str w delta
  | Rejoin.Delta_ack { acks } ->
    Codec.W.int w 4;
    Codec.W.int w (List.length acks);
    List.iter
      (fun (row, ver) ->
        Codec.W.int w row;
        Codec.W.int w ver)
      acks

let r_rejoin r : Rejoin.msg =
  match Codec.R.int r with
  | 0 -> Rejoin.State_req { rid = Codec.R.int r }
  | 1 ->
    let rid = Codec.R.int r in
    let payload = r_payload r in
    Rejoin.State_resp { rid; payload }
  | 2 -> Rejoin.State_push { payload = r_payload r }
  | 3 -> Rejoin.State_delta { delta = Codec.R.str r }
  | 4 ->
    let count = Codec.R.int r in
    if count > 65536 then raise (Codec.Corrupt "QENV: ack count");
    Rejoin.Delta_ack
      {
        acks =
          List.init count (fun _ ->
              let row = Codec.R.int r in
              let ver = Codec.R.int r in
              (row, ver));
      }
  | k -> raise (Codec.Corrupt (Printf.sprintf "QENV: unknown rejoin %d" k))

(* --- Envelope --- *)

let encode t =
  let w = Codec.W.create () in
  (match t with
   | Proto m ->
     Codec.W.int w 0;
     Codec.W.int w m.Xmsg.sender;
     w_body w m.Xmsg.body;
     Codec.W.str w m.Xmsg.signature
   | Rejoin m ->
     Codec.W.int w 1;
     w_rejoin w m);
  Codec.frame ~tag ~version (Codec.W.contents w)

let decode s =
  let v, payload = Codec.unframe ~tag s in
  if v <> version then raise (Codec.Corrupt "QENV: unknown version");
  let r = Codec.R.of_string payload in
  let t =
    match Codec.R.int r with
    | 0 ->
      let sender = Codec.R.int r in
      let body = r_body r in
      let signature = Codec.R.str r in
      Proto { Xmsg.sender; body; signature }
    | 1 -> Rejoin (r_rejoin r)
    | k -> raise (Codec.Corrupt (Printf.sprintf "QENV: unknown plane %d" k))
  in
  if not (Codec.R.eof r) then raise (Codec.Corrupt "QENV: trailing bytes");
  t
