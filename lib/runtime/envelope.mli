(** Wire envelope for XPaxos runtime nodes.

    Multiplexes the XPaxos protocol plane and the {!Qs_recovery.Rejoin}
    recovery plane over one transport — the runtime counterpart of the
    chaos harness's parallel recovery network. The codec is hand-written
    over the {!Qs_recovery.Codec} primitives (tag ["QENV"], version 1):
    explicit layouts per constructor, length-prefixed strings, checksummed
    frame — never [Marshal], so a corrupt or adversarial byte stream is an
    explicit [Corrupt], not a segfault or a forged value. *)

type t =
  | Proto of Qs_xpaxos.Xmsg.t
  | Rejoin of Qs_recovery.Rejoin.msg

val encode : t -> string

val decode : string -> t
(** Raises {!Qs_recovery.Codec.Corrupt}. *)
