module Codec = Qs_recovery.Codec

(* Wire frames for the TCP transport.

   On the stream each frame is a 4-byte big-endian length prefix followed by
   a {!Qs_recovery.Codec.frame} body (tag "QSRT"), so every byte after the
   prefix is covered by the codec's magic/tag/version checks and payload
   checksum: truncation, bit flips and garbage injection all surface as
   [Codec.Corrupt], never as a misparsed message. The [src] field is the
   {e claimed} sender; nothing at this layer authenticates it (signatures
   live in the protocol payload), which is exactly why a corrupt frame
   quarantines the delivering connection and never the claimed sender. *)

type kind = Hello | Data | Keepalive

type t = { kind : kind; src : int; incarnation : int; seq : int; payload : string }

let tag = "QSRT"

let version = 1

let max_frame_bytes = 8 * 1024 * 1024

let kind_byte = function Hello -> 0 | Data -> 1 | Keepalive -> 2

let kind_of_byte = function
  | 0 -> Hello
  | 1 -> Data
  | 2 -> Keepalive
  | b -> raise (Codec.Corrupt (Printf.sprintf "QSRT: unknown kind %d" b))

let encode_body f =
  let w = Codec.W.create () in
  Codec.W.int w (kind_byte f.kind);
  Codec.W.int w f.src;
  Codec.W.int w f.incarnation;
  Codec.W.int w f.seq;
  Codec.W.str w f.payload;
  Codec.frame ~tag ~version (Codec.W.contents w)

let decode_body s =
  let v, payload = Codec.unframe ~tag s in
  if v <> version then raise (Codec.Corrupt "QSRT: unknown version");
  let r = Codec.R.of_string payload in
  let kind = kind_of_byte (Codec.R.int r) in
  let src = Codec.R.int r in
  let incarnation = Codec.R.int r in
  let seq = Codec.R.int r in
  let payload = Codec.R.str r in
  if not (Codec.R.eof r) then raise (Codec.Corrupt "QSRT: trailing bytes");
  { kind; src; incarnation; seq; payload }

let encode f =
  let body = encode_body f in
  let len = String.length body in
  if len > max_frame_bytes then invalid_arg "Frame.encode: frame too large";
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string body 0 b 4 len;
  Bytes.unsafe_to_string b

(* Blocking exact-count read; End_of_file on a cleanly closed peer (or one
   that dies mid-frame — a truncated stream is indistinguishable from a
   close, and either way the connection is done). *)
let really_read fd buf ofs len =
  let rec go ofs len =
    if len > 0 then begin
      let k = Unix.read fd buf ofs len in
      if k = 0 then raise End_of_file;
      go (ofs + k) (len - k)
    end
  in
  go ofs len

let read fd =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame_bytes then
    raise (Codec.Corrupt (Printf.sprintf "QSRT: bad frame length %d" len));
  let body = Bytes.create len in
  really_read fd body 0 len;
  decode_body (Bytes.unsafe_to_string body)

let write fd f =
  let s = encode f in
  let b = Bytes.unsafe_of_string s in
  let rec go ofs len =
    if len > 0 then begin
      let k = Unix.write fd b ofs len in
      go (ofs + k) (len - k)
    end
  in
  go 0 (Bytes.length b)
