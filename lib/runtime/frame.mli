(** Length-prefixed, checksummed wire frames for the TCP transport.

    On the stream: a 4-byte big-endian length prefix, then a
    {!Qs_recovery.Codec.frame} body (tag ["QSRT"], version 1) carrying kind,
    claimed sender, sender incarnation, sequence number and payload. The
    codec's checksum covers all of it, so truncation, bit flips and injected
    garbage decode to {!Qs_recovery.Codec.Corrupt} — and because the [src]
    field is merely {e claimed} (authentication is the protocol payload's
    signature), a corrupt frame condemns only the connection that delivered
    it, never the process it names. *)

type kind =
  | Hello  (** First frame on a connection: announces src and incarnation. *)
  | Data  (** [payload] carries one protocol message. *)
  | Keepalive  (** Periodic liveness signal on an idle connection. *)

type t = {
  kind : kind;
  src : int;  (** Claimed sender pid — trusted only after payload-level verification. *)
  incarnation : int;
      (** Sender-process incarnation; a restart changes it, telling receivers
          to reset their per-sender dedup watermark. *)
  seq : int;  (** Per-(src, dst) monotone sequence number for dedup. *)
  payload : string;
}

val max_frame_bytes : int
(** Upper bound on an encoded body; longer length prefixes are rejected as
    corrupt before allocation. *)

val encode : t -> string
(** Length prefix + framed body. [Invalid_argument] if over
    {!max_frame_bytes}. *)

val decode_body : string -> t
(** Decode a body ({!encode} output {e without} its 4-byte prefix). Raises
    {!Qs_recovery.Codec.Corrupt} on any corruption. *)

val read : Unix.file_descr -> t
(** Blocking read of one frame. Raises [End_of_file] on a closed (or
    mid-frame dead) peer, {!Qs_recovery.Codec.Corrupt} on a bad frame,
    [Unix.Unix_error] on socket failure. *)

val write : Unix.file_descr -> t -> unit
(** Blocking write of one frame. *)
