(* Bounded thread-safe queue with drop-oldest shedding.

   The hand-over point between I/O threads and an endpoint's driver thread.
   Bounded because a slow consumer must exert backpressure somewhere: when
   full, the OLDEST entry is shed (and counted) rather than the newest —
   for protocol traffic the freshest message supersedes stale ones, and a
   blocking push from a receiver thread would let one slow endpoint stall
   its peers' sender threads. *)

type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable shed : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  {
    capacity;
    q = Queue.create ();
    m = Mutex.create ();
    nonempty = Condition.create ();
    shed = 0;
    closed = false;
  }

let push t x =
  Mutex.lock t.m;
  let accepted =
    if t.closed then false
    else begin
      if Queue.length t.q >= t.capacity then begin
        ignore (Queue.pop t.q);
        t.shed <- t.shed + 1
      end;
      Queue.push x t.q;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.m;
  accepted

(* [pop ~timeout] blocks until an element, the timeout, or close-and-drained.
   Condition has no timed wait in the stdlib, so the timeout is implemented
   by polling in small slices — precise enough for driver-loop pacing, and
   the signal on push still wakes waiters immediately in the common case. *)
let poll_slice = 0.002

let pop ?timeout t =
  let deadline =
    match timeout with None -> None | Some s -> Some (Unix.gettimeofday () +. s)
  in
  Mutex.lock t.m;
  let rec loop () =
    if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
    else if t.closed then None
    else
      match deadline with
      | None ->
        Condition.wait t.nonempty t.m;
        loop ()
      | Some d ->
        let remaining = d -. Unix.gettimeofday () in
        if remaining <= 0.0 then None
        else begin
          (* Timed wait by briefly releasing the lock; re-check on wake. *)
          Mutex.unlock t.m;
          Thread.delay (Float.min poll_slice remaining);
          Mutex.lock t.m;
          loop ()
        end
  in
  let r = loop () in
  Mutex.unlock t.m;
  r

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n

let shed t =
  Mutex.lock t.m;
  let n = t.shed in
  Mutex.unlock t.m;
  n

let closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
