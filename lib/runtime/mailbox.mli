(** Bounded thread-safe queue with drop-oldest shedding.

    The hand-over point between the runtime's I/O threads and an endpoint's
    single driver thread, and the bounded send queue in front of each TCP
    peer connection. When full, {!push} sheds the {e oldest} entry and
    counts it — fresh protocol messages supersede stale ones, and shedding
    beats blocking a receiver thread on a slow consumer. The shed counter
    is part of the runtime's deterministic component-level bench gate. *)

type 'a t

val create : capacity:int -> 'a t
(** [Invalid_argument] if [capacity <= 0]. *)

val push : 'a t -> 'a -> bool
(** Never blocks. [false] iff the mailbox is closed (the element is
    discarded without counting as shed). *)

val pop : ?timeout:float -> 'a t -> 'a option
(** Block until an element is available ([Some]), the optional [timeout]
    in seconds elapses, or the mailbox is closed and drained ([None]). *)

val close : _ t -> unit
(** Wake all waiters; subsequent pushes are discarded, pops drain what
    remains then return [None]. *)

val length : _ t -> int

val shed : _ t -> int
(** Entries dropped by drop-oldest shedding since creation. *)

val closed : _ t -> bool
