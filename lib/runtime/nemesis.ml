module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Fault = Qs_faults.Fault
module Journal = Qs_obs.Journal

let log = Logs.Src.create "qs.runtime.nemesis" ~doc:"Live fault injection"

module Log = (val Logs.src_log log : Logs.LOG)

(* Live fault injection: compile a declarative {!Qs_faults.Fault.schedule}
   onto a running TCP fabric. The same DSL that drives the simulated
   injector drives real sockets here — omissions become loss policies,
   delays become sender-side holds, crashes become mute+refuse windows with
   killed sockets, amnesia crashes additionally wipe-and-rejoin at the
   window's end. Phases are armed and disarmed by the coordinator's timer
   wheel, which the harness advances to the wall clock. *)

type controls = {
  set_policy : src:int -> dst:int -> Tcp.policy option -> unit;
  kill_links : me:int -> unit;
  set_refusing : me:int -> bool -> unit;
  set_paused : me:int -> bool -> unit;
  amnesia : int -> unit;
}

type t = {
  n : int;
  controls : controls;
  (* Overlapping phases may shape the same link; each arms under its own
     token and the effective policy is the merge of whatever is live. *)
  live : (int * int, (int * Tcp.policy) list) Hashtbl.t;
  mutable next_token : int;
  mutable armed : int;
  mutable installed : int;
  mutable unsupported : int;
}

let merge_policies ps =
  match ps with
  | [] -> None
  | ps ->
    let keep = List.fold_left (fun acc (_, p) -> acc *. (1.0 -. p.Tcp.loss)) 1.0 ps in
    let delay =
      List.fold_left (fun acc (_, p) -> Stime.( + ) acc p.Tcp.extra_delay) 0 ps
    in
    Some { Tcp.loss = 1.0 -. keep; extra_delay = delay }

let apply_link t ~src ~dst =
  let ps = try Hashtbl.find t.live (src, dst) with Not_found -> [] in
  t.controls.set_policy ~src ~dst (merge_policies ps)

let arm_link t ~src ~dst policy =
  let token = t.next_token in
  t.next_token <- t.next_token + 1;
  let ps = try Hashtbl.find t.live (src, dst) with Not_found -> [] in
  Hashtbl.replace t.live (src, dst) ((token, policy) :: ps);
  apply_link t ~src ~dst;
  token

let disarm_link t ~src ~dst token =
  let ps = try Hashtbl.find t.live (src, dst) with Not_found -> [] in
  Hashtbl.replace t.live (src, dst) (List.filter (fun (tk, _) -> tk <> token) ps);
  apply_link t ~src ~dst

let cut_links ~n members =
  (* Both directions across the cut. *)
  let inside = Array.make n false in
  List.iter (fun m -> if m >= 0 && m < n then inside.(m) <- true) members;
  let cut = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && inside.(a) <> inside.(b) then cut := (a, b) :: !cut
    done
  done;
  !cut

let out_links ~n members =
  let inside = Array.make n false in
  List.iter (fun m -> if m >= 0 && m < n then inside.(m) <- true) members;
  let links = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && inside.(a) && not inside.(b) then links := (a, b) :: !links
    done
  done;
  !links

let journal_phase verb phase =
  if Journal.live () then
    Journal.record (Journal.Custom (verb ^ " " ^ Fault.phase_to_string phase))

(* Arm one phase; returns the disarm closure. *)
let arm t (phase : Fault.phase) =
  let drop = { Tcp.loss = 1.0; extra_delay = 0 } in
  let delay_by by = { Tcp.loss = 0.0; extra_delay = by } in
  let shape_links links policy =
    let tokens = List.map (fun (src, dst) -> (src, dst, arm_link t ~src ~dst policy)) links in
    fun () -> List.iter (fun (src, dst, tk) -> disarm_link t ~src ~dst tk) tokens
  in
  let crash_members ?(amnesia_at_stop = false) members =
    List.iter
      (fun p ->
        t.controls.set_paused ~me:p true;
        t.controls.set_refusing ~me:p true;
        t.controls.kill_links ~me:p)
      members;
    fun () ->
      List.iter
        (fun p ->
          t.controls.set_refusing ~me:p false;
          t.controls.set_paused ~me:p false;
          if amnesia_at_stop then t.controls.amnesia p)
        members
  in
  match phase.Fault.what with
  | Fault.Omit { src; dst } -> shape_links [ (src, dst) ] drop
  | Fault.Delay { src; dst; by } -> shape_links [ (src, dst) ] (delay_by by)
  | Fault.Partition members -> shape_links (cut_links ~n:t.n members) drop
  | Fault.RegionPartition { members; _ } ->
    shape_links (cut_links ~n:t.n members) drop
  | Fault.GrayRegion { members; by; _ } ->
    shape_links (out_links ~n:t.n members) (delay_by by)
  | Fault.Crash p -> crash_members [ p ]
  | Fault.CrashAmnesia p -> crash_members ~amnesia_at_stop:true [ p ]
  | Fault.RackLoss { members; _ } -> crash_members members
  | Fault.Duplicate _ | Fault.Equivocate _ | Fault.Slander _ | Fault.Tamper _
  | Fault.Replay _ | Fault.Join _ | Fault.Leave _ ->
    (* Needs either in-flight payload substitution (the simulated network's
       Replace verdicts) or a membership engine — neither exists on the TCP
       path yet. Counted so a harness can refuse such schedules loudly. *)
    t.unsupported <- t.unsupported + 1;
    Log.warn (fun m ->
        m "unsupported on real transport: %s" (Fault.phase_to_string phase));
    fun () -> ()

let install ~sim ~controls ~n schedule =
  Fault.validate ~n schedule;
  let t =
    {
      n;
      controls;
      live = Hashtbl.create 16;
      next_token = 0;
      armed = 0;
      installed = 0;
      unsupported = 0;
    }
  in
  List.iter
    (fun (phase : Fault.phase) ->
      Sim.schedule_at sim ~at:phase.Fault.start (fun () ->
          journal_phase "fault+" phase;
          t.armed <- t.armed + 1;
          t.installed <- t.installed + 1;
          let disarm = arm t phase in
          match phase.Fault.stop with
          | None -> ()
          | Some stop ->
            Sim.schedule_at sim ~at:stop (fun () ->
                journal_phase "fault-" phase;
                t.armed <- t.armed - 1;
                disarm ())))
    schedule;
  t

let active t = t.armed

let installed t = t.installed

let unsupported t = t.unsupported
