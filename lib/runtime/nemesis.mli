(** Live fault injection: the fault DSL over real sockets.

    Compiles a {!Qs_faults.Fault.schedule} — the same declarative
    vocabulary the simulated {!Qs_faults.Injector} consumes — onto a
    running TCP fabric through a {!controls} record:

    - [Omit] / [Partition] / [RegionPartition] → loss-1.0 link policies
      across the affected links (partitions cut both directions);
    - [Delay] / [GrayRegion] → sender-side extra-latency policies;
    - [Crash] / [RackLoss] → pause (mute) + connect-refusal windows with
      every live socket killed, so peers experience real connection death
      and reconnect under backoff;
    - [CrashAmnesia] → a crash window whose end additionally invokes the
      [amnesia] hook (wipe to durable snapshot, start rejoin);
    - commission and churn kinds ([Duplicate], [Equivocate], [Slander],
      [Tamper], [Replay], [Join], [Leave]) are {e unsupported} on the real
      transport and counted, never silently dropped.

    Overlapping phases on one link compose: losses combine as independent
    drops, delays add. Phase transitions are journaled as
    [Custom "fault+ ..."/"fault- ..."] like the simulated injector's. *)

type controls = {
  set_policy : src:int -> dst:int -> Tcp.policy option -> unit;
  kill_links : me:int -> unit;
  set_refusing : me:int -> bool -> unit;
  set_paused : me:int -> bool -> unit;
  amnesia : int -> unit;
}

type t

val install :
  sim:Qs_sim.Sim.t -> controls:controls -> n:int -> Qs_faults.Fault.schedule -> t
(** Schedule every phase on the coordinator's timer wheel (which the
    harness advances to the wall clock). Validates the schedule against
    universe size [n] ([Invalid_argument] on nonsense). *)

val active : t -> int
(** Phases currently armed. *)

val installed : t -> int
(** Phases ever armed so far. *)

val unsupported : t -> int
(** Phases skipped because the real transport cannot express them. *)
