module Stime = Qs_sim.Stime
module Store = Qs_recovery.Store
module Rejoin = Qs_recovery.Rejoin
module Replica = Qs_xpaxos.Replica
module Xmsg = Qs_xpaxos.Xmsg
module Xdurable = Qs_xpaxos.Xdurable

(* One XPaxos process over an abstract transport: the replica core, its
   durable store, and a rejoin engine sharing the transport through the
   {!Envelope} multiplexer. The functor never looks inside the transport —
   instantiate it with {!Transport.Sim} and the node runs in the
   discrete-event simulator, with {!Tcp.Make} and the very same code runs
   over sockets. *)

module Make (T : Transport.TRANSPORT with type msg = Envelope.t) = struct
  type t = {
    me : int;
    config : Replica.config;
    transport : T.t;
    replica : Replica.t;
    rejoin : Rejoin.t;
    store : Store.t option;
  }

  let create ~config ~me ~auth ~transport ?store
      ?(rejoin_config : Rejoin.config option) ?on_execute ?on_view_change () =
    let sim = T.sim transport ~me in
    let node = ref None in
    let replica =
      Replica.create config ~me ~auth ~sim
        ~net_send:(fun ~dst msg ->
          T.send transport ~src:me ~dst (Envelope.Proto msg))
        ~on_execute:(fun ~slot request ->
          (match (!node, store) with
           | Some n, Some s -> Xdurable.persist n.replica s
           | _ -> ());
          match on_execute with Some f -> f ~slot request | None -> ())
        ?on_view_change ()
    in
    let rejoin =
      Rejoin.create ~sim
        (match rejoin_config with
         | Some c -> c
         | None ->
           { (Rejoin.default_config ~n:config.Replica.n) with
             Rejoin.needed = 1;
             gossip_every = Some (Stime.of_ms 1000);
           })
        ~me
        ~collect:(fun () ->
          Xdurable.collect_payload ~n:config.Replica.n replica)
        ~adopt:(fun ~matrix ~epoch ~extra ->
          Xdurable.adopt_payload replica ~matrix ~epoch ~extra)
        ~send:(fun ~dst msg -> T.send transport ~src:me ~dst (Envelope.Rejoin msg))
        ()
    in
    let t = { me; config; transport; replica; rejoin; store } in
    node := Some t;
    T.set_handler transport me (fun ~src env ->
        match env with
        | Envelope.Proto m -> Replica.receive replica ~src m
        | Envelope.Rejoin m -> Rejoin.handle rejoin ~src m);
    (match store with Some s -> Xdurable.persist replica s | None -> ());
    t

  let me t = t.me

  let replica t = t.replica

  let rejoin t = t.rejoin

  let store t = t.store

  let submit t request = T.post t.transport t.me (fun () -> Replica.submit t.replica request)

  let start_gossip t = Rejoin.start_gossip t.rejoin

  let persist t = match t.store with Some s -> Xdurable.persist t.replica s | None -> ()

  (* Amnesia crash-recovery, in the node's own execution context: wipe the
     volatile state, restore the durable snapshot, open a rejoin round and
     merge our own durable selection state into it as a self-push — the
     exact sequence the chaos harness performs in simulation. *)
  let crash_amnesia t =
    T.post t.transport t.me (fun () ->
        let payload = Xdurable.amnesia ~n:t.config.Replica.n t.replica t.store in
        Rejoin.start t.rejoin;
        Rejoin.handle t.rejoin ~src:t.me (Rejoin.State_push { payload }))
end
