(** An XPaxos process over an abstract transport.

    Bundles the unmodified {!Qs_xpaxos.Replica} core with its durable store
    ({!Qs_xpaxos.Xdurable} persistence at every execute) and a
    {!Qs_recovery.Rejoin} engine, both planes multiplexed through
    {!Envelope} on one {!Transport.TRANSPORT}. Instantiated with
    {!Transport.Sim} it runs in the discrete-event simulator; with
    {!Tcp.Make} the same code runs over real sockets — the sim-vs-real
    parity the runtime tests assert. *)

module Make (T : Transport.TRANSPORT with type msg = Envelope.t) : sig
  type t

  val create :
    config:Qs_xpaxos.Replica.config ->
    me:int ->
    auth:Qs_crypto.Auth.t ->
    transport:T.t ->
    ?store:Qs_recovery.Store.t ->
    ?rejoin_config:Qs_recovery.Rejoin.config ->
    ?on_execute:(slot:int -> Qs_xpaxos.Xmsg.request -> unit) ->
    ?on_view_change:(view:int -> group:int list -> unit) ->
    unit ->
    t
  (** Installs the transport handler for [me]. With a [store], every
      executed request persists-and-fsyncs the durable state, and the
      initial state is persisted as the baseline snapshot. Default rejoin
      config: 1 response needed, 1 s anti-entropy gossip. *)

  val me : t -> int

  val replica : t -> Qs_xpaxos.Replica.t

  val rejoin : t -> Qs_recovery.Rejoin.t

  val store : t -> Qs_recovery.Store.t option

  val submit : t -> Qs_xpaxos.Xmsg.request -> unit
  (** Post a client request into the node's execution context
      (thread-safe). *)

  val start_gossip : t -> unit

  val persist : t -> unit
  (** Persist-and-fsync now (no-op without a store). *)

  val crash_amnesia : t -> unit
  (** Post an amnesia crash-recovery: wipe volatile state, re-import the
      durable snapshot, start a rejoin round and self-push the durable
      selection state — the kill-then-restart path; the node then rejoins
      through the recovery plane automatically. *)
end
