(* Restart-with-budget thread supervision.

   A supervised thread runs its body; if the body raises, the supervisor
   logs it and restarts the body until the restart budget is exhausted, at
   which point the thread dies for good and [alive] turns false. Normal
   return is a clean exit (no restart) — reconnect loops and driver loops
   encode "run forever" themselves and use the budget purely as a
   crash-loop bound. *)

type t = {
  name : string;
  budget : int;
  mutable restarts : int;
  mutable running : bool;
  mutable stopping : bool;
  m : Mutex.t;
  mutable thread : Thread.t option;
}

let log = Logs.Src.create "qs.runtime.supervisor" ~doc:"Runtime thread supervision"

module Log = (val Logs.src_log log : Logs.LOG)

let spawn ~name ?(restarts = 3) body =
  if restarts < 0 then invalid_arg "Supervisor.spawn: negative restart budget";
  let t =
    {
      name;
      budget = restarts;
      restarts = 0;
      running = true;
      stopping = false;
      m = Mutex.create ();
      thread = None;
    }
  in
  let rec run () =
    match body () with
    | () ->
      Mutex.lock t.m;
      t.running <- false;
      Mutex.unlock t.m
    | exception exn ->
      Mutex.lock t.m;
      let again = (not t.stopping) && t.restarts < t.budget in
      if again then t.restarts <- t.restarts + 1 else t.running <- false;
      Mutex.unlock t.m;
      Log.warn (fun m ->
          m "%s: %s (%s)" t.name (Printexc.to_string exn)
            (if again then Printf.sprintf "restart %d/%d" t.restarts t.budget
             else "budget exhausted"));
      if again then run ()
  in
  t.thread <- Some (Thread.create run ());
  t

let alive t =
  Mutex.lock t.m;
  let r = t.running in
  Mutex.unlock t.m;
  r

let restarts t =
  Mutex.lock t.m;
  let r = t.restarts in
  Mutex.unlock t.m;
  r

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Mutex.unlock t.m

let join t = match t.thread with None -> () | Some th -> Thread.join th
