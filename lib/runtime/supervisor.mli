(** Restart-with-budget thread supervision.

    Wraps a thread body so an escaped exception restarts it instead of
    silently killing the thread, up to a finite budget — a crashing replica
    driver gets bounded retries, a crash-looping one eventually stays down
    and {!alive} reports it. Normal return is a clean exit: loops encode
    "run forever" themselves. *)

type t

val spawn : name:string -> ?restarts:int -> (unit -> unit) -> t
(** Start the body in a fresh thread with a restart budget (default 3).
    [Invalid_argument] on a negative budget. *)

val alive : t -> bool
(** [true] while the body is running or will be restarted. *)

val restarts : t -> int
(** Restarts consumed so far. *)

val stop : t -> unit
(** Withdraw the restart budget: the {e next} exception (or return) ends the
    thread. Cooperative — the body must be made to exit (close its mailbox,
    shut its socket) for {!join} to return. *)

val join : t -> unit
