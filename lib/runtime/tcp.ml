module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Prng = Qs_stdx.Prng
module Timeout = Qs_fd.Timeout
module Codec = Qs_recovery.Codec

let log = Logs.Src.create "qs.runtime.tcp" ~doc:"Real TCP transport"

module Log = (val Logs.src_log log : Logs.LOG)

(* Outgoing per-link shaping, installed by the nemesis: each frame on the
   link is dropped with probability [loss] (per-link seeded PRNG, so a run
   with a fixed seed sheds a reproducible *fraction*, not a reproducible
   set) and otherwise held back [extra_delay] before the write. *)
type policy = { loss : float; extra_delay : Stime.t }

type stats = {
  sent : int;  (** frames accepted into send queues *)
  delivered : int;  (** data frames handed to the endpoint handler *)
  shed : int;  (** frames dropped by bounded-queue backpressure *)
  dup_dropped : int;  (** frames discarded by sequence dedup *)
  corrupt_rejected : int;  (** frames rejected as [Corrupt]; each kills its connection *)
  nemesis_dropped : int;  (** frames dropped by an armed loss policy *)
  reconnects : int;  (** successful (re-)connects beyond each link's first *)
  keepalives_seen : int;
}

module type WIRE = sig
  type msg

  val encode : msg -> string

  val decode : string -> msg
  (** Raises {!Qs_recovery.Codec.Corrupt}. *)
end

module Make (M : WIRE) = struct
  type msg = M.msg

  (* One outgoing link: a bounded queue drained by a supervised sender
     thread that owns the connection and its reconnect backoff. *)
  type link = {
    dst : int;
    queue : string Mailbox.t;
    backoff : Timeout.Backoff.t;
    jitter_prng : Prng.t;
    policy_prng : Prng.t;
    mutable policy : policy option;
    mutable seq : int;
    mutable fd : Unix.file_descr option;
    mutable connects : int;
    mutable nemesis_dropped : int;
    m : Mutex.t;
  }

  type endpoint = {
    me : int;
    incarnation : int;
    wheel : Sim.t;  (* private timer wheel, advanced to the wall clock *)
    inbox : (unit -> unit) Mailbox.t;
    mutable handler : (src:int -> msg -> unit) option;
    mutable on_keepalive : (src:int -> unit) option;
    links : link option array;  (* [None] at index [me] *)
    (* receiver-side dedup: src -> (incarnation, seq high-watermark) *)
    dedup : (int, int * int) Hashtbl.t;
    mutable listen_fd : Unix.file_descr option;
    mutable inbound : Unix.file_descr list;
    mutable refusing : bool;
    mutable paused : bool;
    mutable running : bool;
    mutable delivered : int;
    mutable dup_dropped : int;
    mutable corrupt_rejected : int;
    mutable keepalives_seen : int;
    em : Mutex.t;
    mutable threads : Supervisor.t list;
  }

  type t = {
    n : int;
    addrs : Unix.sockaddr array;
    clock : Wallclock.t;
    seed : int64;
    queue_capacity : int;
    inbox_capacity : int;
    keepalive_every : Stime.t;
    reconnect_initial : Stime.t;
    reconnect_strategy : Timeout.strategy;
    reconnect_jitter : float;
    endpoints : endpoint option array;
    fm : Mutex.t;
  }

  let create ~addrs ?(seed = 1L) ?(queue_capacity = 256) ?(inbox_capacity = 4096)
      ?(keepalive_every = Stime.of_ms 50) ?(reconnect_initial = Stime.of_ms 10)
      ?(reconnect_strategy =
        Timeout.Exponential { factor = 2.0; max = Stime.of_ms 1000 })
      ?(reconnect_jitter = 0.2) () =
    let n = Array.length addrs in
    if n < 2 then invalid_arg "Tcp.create: need at least two endpoints";
    (* A peer death must surface as EPIPE on the write, not kill the
       process: connection failure is routine here, handled by reconnect. *)
    if Sys.os_type = "Unix" then
      ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore : Sys.signal_behavior);
    {
      n;
      addrs = Array.copy addrs;
      clock = Wallclock.create ();
      seed;
      queue_capacity;
      inbox_capacity;
      keepalive_every;
      reconnect_initial;
      reconnect_strategy;
      reconnect_jitter;
      endpoints = Array.make n None;
      fm = Mutex.create ();
    }

  let n t = t.n

  let clock t = t.clock

  let endpoint t i =
    match t.endpoints.(i) with
    | Some ep -> ep
    | None -> invalid_arg (Printf.sprintf "Tcp: endpoint %d not started" i)

  let sim t ~me = (endpoint t me).wheel

  let set_handler t i f = (endpoint t i).handler <- Some (fun ~src m -> f ~src m)

  let set_keepalive t i f = (endpoint t i).on_keepalive <- Some (fun ~src -> f ~src)

  let post t i f = ignore (Mailbox.push (endpoint t i).inbox f : bool)

  (* ---------------- sender side ---------------- *)

  let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let link_drop_conn link =
    Mutex.lock link.m;
    let fd = link.fd in
    link.fd <- None;
    Mutex.unlock link.m;
    match fd with None -> () | Some fd -> close_quietly fd

  (* Connect with exponential backoff and jitter. Returns [None] when the
     endpoint is shutting down. *)
  let rec connect_loop t ep link =
    if not ep.running then None
    else
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.setsockopt sock Unix.TCP_NODELAY true;
        Unix.connect sock t.addrs.(link.dst)
      with
      | () ->
        Timeout.Backoff.reset link.backoff;
        Mutex.lock link.m;
        link.fd <- Some sock;
        link.connects <- link.connects + 1;
        Mutex.unlock link.m;
        (* First frame announces who we are and which incarnation, so the
           receiver can reset its dedup watermark across our restarts. *)
        (try
           Frame.write sock
             {
               Frame.kind = Frame.Hello;
               src = ep.me;
               incarnation = ep.incarnation;
               seq = 0;
               payload = "";
             };
           Some sock
         with Unix.Unix_error _ | Sys_error _ ->
           link_drop_conn link;
           connect_loop t ep link)
      | exception Unix.Unix_error _ ->
        close_quietly sock;
        Timeout.Backoff.advance link.backoff;
        let u = Prng.float link.jitter_prng 1.0 in
        Wallclock.sleep (Timeout.Backoff.delay link.backoff ~u);
        connect_loop t ep link

  let apply_policy link =
    match link.policy with
    | None -> `Send
    | Some p ->
      if p.loss > 0.0 && Prng.chance link.policy_prng p.loss then `Drop
      else begin
        if p.extra_delay > 0 then Wallclock.sleep p.extra_delay;
        `Send
      end

  let sender_loop t ep link () =
    let idle_budget = Wallclock.to_seconds t.keepalive_every in
    while ep.running do
      let fd =
        match link.fd with Some fd -> Some fd | None -> connect_loop t ep link
      in
      match fd with
      | None -> () (* shutting down *)
      | Some fd -> (
        match Mailbox.pop ~timeout:idle_budget link.queue with
        | None ->
          if Mailbox.closed link.queue then raise Exit;
          (* Idle: keep the connection warm and the peer's liveness view
             fresh. A dead peer surfaces here as a write error. *)
          (try
             Frame.write fd
               {
                 Frame.kind = Frame.Keepalive;
                 src = ep.me;
                 incarnation = ep.incarnation;
                 seq = 0;
                 payload = "";
               }
           with Unix.Unix_error _ | Sys_error _ -> link_drop_conn link)
        | Some payload -> (
          match apply_policy link with
          | `Drop ->
            Mutex.lock link.m;
            link.nemesis_dropped <- link.nemesis_dropped + 1;
            Mutex.unlock link.m
          | `Send ->
            link.seq <- link.seq + 1;
            (try
               Frame.write fd
                 {
                   Frame.kind = Frame.Data;
                   src = ep.me;
                   incarnation = ep.incarnation;
                   seq = link.seq;
                   payload;
                 }
             with Unix.Unix_error _ | Sys_error _ ->
               (* The frame dies with the connection; the protocol layer owns
                  retransmission (XPaxos resubmits, rejoin rebroadcasts). *)
               link_drop_conn link)))
    done

  let send t ~src ~dst m =
    let ep = endpoint t src in
    if ep.paused then ()
    else if dst = src then begin
      (* Self-send short-circuits the wire, like the simulator's one-tick
         self-delivery: run it as a posted event on our own driver. *)
      ignore
        (Mailbox.push ep.inbox (fun () ->
             ep.delivered <- ep.delivered + 1;
             match ep.handler with
             | Some h -> h ~src m
             | None -> ())
          : bool)
    end
    else
      match ep.links.(dst) with
      | None -> ()
      | Some link -> ignore (Mailbox.push link.queue (M.encode m) : bool)

  (* ---------------- receiver side ---------------- *)

  let handle_data ep ~src ~incarnation ~seq payload =
    (* Runs on the driver thread under the core lock: dedup state and the
       handler are single-threaded. *)
    let fresh =
      match Hashtbl.find_opt ep.dedup src with
      | Some (inc, hi) when inc = incarnation -> seq > hi
      | Some _ | None -> true (* new incarnation: watermark resets *)
    in
    if not fresh then ep.dup_dropped <- ep.dup_dropped + 1
    else begin
      Hashtbl.replace ep.dedup src (incarnation, seq);
      match M.decode payload with
      | m -> (
        ep.delivered <- ep.delivered + 1;
        match ep.handler with Some h -> h ~src m | None -> ())
      | exception Codec.Corrupt _ ->
        (* Framed bytes were intact but the payload codec rejects: count it
           against the channel like any corrupt frame. *)
        ep.corrupt_rejected <- ep.corrupt_rejected + 1
    end

  (* One thread per inbound connection. The claimed source is whatever the
     Hello frame said — corrupt traffic kills this connection (the channel
     is quarantined) but never marks the claimed sender: a forger must not
     be able to get its victim blamed by sending garbage under its name. *)
  let receiver_loop ep fd () =
    match
      let rec loop () =
        let f = Frame.read fd in
        (match f.Frame.kind with
         | Frame.Hello -> ()
         | Frame.Keepalive ->
           ignore
             (Mailbox.push ep.inbox (fun () ->
                  ep.keepalives_seen <- ep.keepalives_seen + 1;
                  match ep.on_keepalive with
                  | Some h -> h ~src:f.Frame.src
                  | None -> ())
               : bool)
         | Frame.Data ->
           ignore
             (Mailbox.push ep.inbox (fun () ->
                  handle_data ep ~src:f.Frame.src
                    ~incarnation:f.Frame.incarnation ~seq:f.Frame.seq
                    f.Frame.payload)
               : bool));
        loop ()
      in
      loop ()
    with
    | () -> ()
    | exception End_of_file -> close_quietly fd
    | exception Unix.Unix_error _ -> close_quietly fd
    | exception Codec.Corrupt reason ->
      ignore
        (Mailbox.push ep.inbox (fun () ->
             ep.corrupt_rejected <- ep.corrupt_rejected + 1)
          : bool);
      Log.debug (fun m -> m "endpoint %d: quarantining connection: %s" ep.me reason);
      close_quietly fd

  let accept_loop ep () =
    match ep.listen_fd with
    | None -> ()
    | Some lfd -> (
      try
        while ep.running do
          let fd, _peer = Unix.accept lfd in
          if ep.refusing || not ep.running then close_quietly fd
          else begin
            Unix.setsockopt fd Unix.TCP_NODELAY true;
            Mutex.lock ep.em;
            ep.inbound <- fd :: ep.inbound;
            Mutex.unlock ep.em;
            ep.threads <-
              Supervisor.spawn
                ~name:(Printf.sprintf "tcp.recv.%d" ep.me)
                ~restarts:0 (receiver_loop ep fd)
              :: ep.threads
          end
        done
      with Unix.Unix_error _ -> () (* listener closed during shutdown *))

  (* ---------------- driver ---------------- *)

  (* The endpoint's execution context: a single thread that advances the
     private timer wheel to the wall clock (firing due protocol timers) and
     runs posted closures (message deliveries, client submissions, nemesis
     actions), all under the process-wide core lock. *)
  let driver_loop t ep () =
    while ep.running do
      Corelock.with_lock (fun () ->
          Sim.advance_to ep.wheel ~at:(Wallclock.now t.clock));
      match Mailbox.pop ~timeout:0.002 ep.inbox with
      | None -> ()
      | Some f ->
        Corelock.with_lock (fun () ->
            f ();
            (* Drain whatever queued behind it in the same slice. *)
            let rec drain budget =
              if budget > 0 then
                match Mailbox.pop ~timeout:0.0 ep.inbox with
                | None -> ()
                | Some g ->
                  g ();
                  drain (budget - 1)
            in
            drain 256)
    done

  let start t ~me =
    Mutex.lock t.fm;
    (match t.endpoints.(me) with
     | Some _ ->
       Mutex.unlock t.fm;
       invalid_arg (Printf.sprintf "Tcp.start: endpoint %d already started" me)
     | None ->
       let prng = Prng.create (Int64.add t.seed (Int64.of_int me)) in
       let ep =
         {
           me;
           (* Microsecond wall time at start: distinct across restarts of the
              same slot, which is all the dedup watermark reset needs. *)
           incarnation =
             int_of_float (Unix.gettimeofday () *. 1e6) land 0x3FFFFFFFFFFF;
           wheel = Sim.create ~seed:(Int64.add t.seed (Int64.of_int (me + 7919))) ();
           inbox = Mailbox.create ~capacity:t.inbox_capacity;
           handler = None;
           on_keepalive = None;
           links = Array.make t.n None;
           dedup = Hashtbl.create 16;
           listen_fd = None;
           inbound = [];
           refusing = false;
           paused = false;
           running = true;
           delivered = 0;
           dup_dropped = 0;
           corrupt_rejected = 0;
           keepalives_seen = 0;
           em = Mutex.create ();
           threads = [];
         }
       in
       let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       Unix.setsockopt lfd Unix.SO_REUSEADDR true;
       Unix.bind lfd t.addrs.(me);
       Unix.listen lfd t.n;
       ep.listen_fd <- Some lfd;
       for dst = 0 to t.n - 1 do
         if dst <> me then begin
           let link =
             {
               dst;
               queue = Mailbox.create ~capacity:t.queue_capacity;
               backoff =
                 Timeout.Backoff.create ~initial:t.reconnect_initial
                   ~jitter:t.reconnect_jitter t.reconnect_strategy;
               jitter_prng = Prng.split prng;
               policy_prng = Prng.substream prng ((me * t.n) + dst);
               policy = None;
               seq = 0;
               fd = None;
               connects = 0;
               nemesis_dropped = 0;
               m = Mutex.create ();
             }
           in
           ep.links.(dst) <- Some link
         end
       done;
       t.endpoints.(me) <- Some ep;
       Mutex.unlock t.fm;
       ep.threads <-
         Supervisor.spawn ~name:(Printf.sprintf "tcp.driver.%d" me) ~restarts:3
           (driver_loop t ep)
         :: Supervisor.spawn ~name:(Printf.sprintf "tcp.accept.%d" me) ~restarts:0
             (accept_loop ep)
         :: ep.threads;
       Array.iter
         (function
           | None -> ()
           | Some link ->
             ep.threads <-
               Supervisor.spawn
                 ~name:(Printf.sprintf "tcp.send.%d.%d" me link.dst)
                 ~restarts:0
                 (fun () -> try sender_loop t ep link () with Exit -> ())
               :: ep.threads)
         ep.links)

  let stop t ~me =
    match t.endpoints.(me) with
    | None -> ()
    | Some ep ->
      ep.running <- false;
      Mailbox.close ep.inbox;
      (match ep.listen_fd with
       | Some fd ->
         ep.listen_fd <- None;
         close_quietly fd
       | None -> ());
      Array.iter
        (function
          | None -> ()
          | Some link ->
            Mailbox.close link.queue;
            link_drop_conn link)
        ep.links;
      Mutex.lock ep.em;
      let inbound = ep.inbound in
      ep.inbound <- [];
      Mutex.unlock ep.em;
      List.iter close_quietly inbound;
      List.iter Supervisor.stop ep.threads;
      t.endpoints.(me) <- None

  (* ---------------- nemesis controls ---------------- *)

  let set_policy t ~src ~dst policy =
    match t.endpoints.(src) with
    | None -> ()
    | Some ep -> (
      match ep.links.(dst) with None -> () | Some link -> link.policy <- policy)

  let kill_links t ~me =
    match t.endpoints.(me) with
    | None -> ()
    | Some ep ->
      Array.iter
        (function None -> () | Some link -> link_drop_conn link)
        ep.links;
      Mutex.lock ep.em;
      let inbound = ep.inbound in
      ep.inbound <- [];
      Mutex.unlock ep.em;
      List.iter close_quietly inbound

  let set_refusing t ~me refusing =
    match t.endpoints.(me) with None -> () | Some ep -> ep.refusing <- refusing

  let set_paused t ~me paused =
    match t.endpoints.(me) with None -> () | Some ep -> ep.paused <- paused

  (* ---------------- stats ---------------- *)

  let stats t ~me =
    let ep = endpoint t me in
    let sent = ref 0 and shed = ref 0 and reconnects = ref 0 in
    let nemesis_dropped = ref 0 in
    Array.iter
      (function
        | None -> ()
        | Some link ->
          sent := !sent + link.seq;
          shed := !shed + Mailbox.shed link.queue;
          nemesis_dropped := !nemesis_dropped + link.nemesis_dropped;
          reconnects := !reconnects + max 0 (link.connects - 1))
      ep.links;
    {
      sent = !sent;
      delivered = ep.delivered;
      shed = !shed + Mailbox.shed ep.inbox;
      dup_dropped = ep.dup_dropped;
      corrupt_rejected = ep.corrupt_rejected;
      nemesis_dropped = !nemesis_dropped;
      reconnects = !reconnects;
      keepalives_seen = ep.keepalives_seen;
    }
end
