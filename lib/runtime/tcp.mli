(** Real TCP transport: the {!Transport.TRANSPORT} carrier over sockets.

    Each started endpoint owns:

    - a {e driver thread} — its single execution context, advancing a
      private timer wheel to the wall clock ({!Qs_sim.Sim.advance_to}) and
      running posted closures under the process-wide core lock, so the
      protocol stack above stays exactly as single-threaded as in the
      simulator;
    - one {e supervised sender thread per peer} draining a bounded
      drop-oldest queue ({!Mailbox}) through a connection it re-establishes
      under exponential backoff with jitter ({!Qs_fd.Timeout.Backoff}),
      sending keepalives when idle;
    - an {e acceptor} spawning one receiver thread per inbound connection.

    Frames are length-prefixed and checksummed ({!Frame}); a corrupt frame
    quarantines (closes) only the connection that delivered it — the
    claimed sender is never marked, since the claim is unauthenticated at
    this layer. Receivers dedup by per-sender sequence high-watermark,
    reset when the sender's incarnation changes (a restarted process starts
    a fresh numbering). Delivery is at-most-once per frame; retransmission
    is the protocol layer's job (XPaxos resubmission, rejoin rebroadcast),
    which is the same contract the lossy simulated network offers. *)

type policy = { loss : float; extra_delay : Qs_sim.Stime.t }
(** Outgoing per-link shaping (nemesis): drop each frame with probability
    [loss] (per-link seeded PRNG), otherwise delay it [extra_delay]. *)

type stats = {
  sent : int;  (** data frames written (sequence numbers consumed) *)
  delivered : int;  (** data frames handed to the handler *)
  shed : int;  (** frames dropped by bounded-queue backpressure *)
  dup_dropped : int;  (** frames discarded by sequence dedup *)
  corrupt_rejected : int;  (** corrupt frames; each one killed its connection *)
  nemesis_dropped : int;  (** frames dropped by an armed loss policy *)
  reconnects : int;  (** successful re-connects beyond each link's first *)
  keepalives_seen : int;
}

module type WIRE = sig
  type msg

  val encode : msg -> string

  val decode : string -> msg
  (** Raises {!Qs_recovery.Codec.Corrupt}. *)
end

module Make (M : WIRE) : sig
  include Transport.TRANSPORT with type msg = M.msg

  val create :
    addrs:Unix.sockaddr array ->
    ?seed:int64 ->
    ?queue_capacity:int ->
    ?inbox_capacity:int ->
    ?keepalive_every:Qs_sim.Stime.t ->
    ?reconnect_initial:Qs_sim.Stime.t ->
    ?reconnect_strategy:Qs_fd.Timeout.strategy ->
    ?reconnect_jitter:float ->
    unit ->
    t
  (** A fabric of [Array.length addrs] endpoint slots, none started.
      Defaults: 256-frame send queues, 4096-closure inboxes, 50 ms
      keepalives, reconnect from 10 ms doubling to 1 s with ±20% jitter. *)

  val start : t -> me:int -> unit
  (** Bind and listen on [addrs.(me)], spawn the driver, acceptor and
      per-peer sender threads. [Invalid_argument] if already started. *)

  val stop : t -> me:int -> unit
  (** Close every socket and queue and release the slot; threads wind down
      asynchronously. Restarting the slot later gets a fresh incarnation. *)

  val clock : t -> Wallclock.t
  (** The fabric's shared wall clock (tick 0 = fabric creation). *)

  val set_keepalive : t -> int -> (src:int -> unit) -> unit
  (** Observe keepalive arrivals at endpoint [i] (driver context) — the
      hook a liveness layer uses to track last-heard times per peer. *)

  (** {2 Nemesis controls} — the live-fault counterpart of the simulated
      network's filter chain. *)

  val set_policy : t -> src:int -> dst:int -> policy option -> unit

  val kill_links : t -> me:int -> unit
  (** Close every live connection at [me] (both directions); senders
      reconnect under backoff. *)

  val set_refusing : t -> me:int -> bool -> unit
  (** While refusing, accepted connections are closed immediately — a
      connect-refusal window. *)

  val set_paused : t -> me:int -> bool -> unit
  (** While paused, {!Transport.TRANSPORT.send} from [me] discards
      silently — the crash/mute window. *)

  val stats : t -> me:int -> stats
end
