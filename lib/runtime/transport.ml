(* The seam between protocol cores and the medium carrying their messages.

   A transport owns, per endpoint, the three things a core needs from its
   environment: a timer wheel (a [Qs_sim.Sim.t] — in a simulation the shared
   virtual clock, on a real transport a private wheel advanced to the wall
   clock), a way to send, and a receive-handler slot. Everything above this
   signature — replicas, rejoin engines, detectors — runs unmodified on
   either side of it. *)

module type TRANSPORT = sig
  type t

  type msg

  val n : t -> int

  val sim : t -> me:int -> Qs_sim.Sim.t

  val send : t -> src:int -> dst:int -> msg -> unit

  val set_handler : t -> int -> (src:int -> msg -> unit) -> unit

  val post : t -> int -> (unit -> unit) -> unit
end

(* The simulated side: a thin adapter over [Qs_sim.Network]. Every endpoint
   shares the network's simulation as its timer wheel, [post] is a
   zero-delay event (preserving run-to-completion), and all the network's
   machinery — delay models, filter chains, tracers, counters — stays
   reachable through [net]. *)
module Sim (M : sig
  type msg
end) =
struct
  type msg = M.msg

  type t = M.msg Qs_sim.Network.t

  let create ~net = net

  let net t = t

  let n = Qs_sim.Network.n

  let sim t ~me:_ = Qs_sim.Network.sim t

  let send t ~src ~dst m = Qs_sim.Network.send t ~src ~dst m

  let set_handler = Qs_sim.Network.set_handler

  let post t _me f = Qs_sim.Sim.schedule (Qs_sim.Network.sim t) ~delay:0 f
end
