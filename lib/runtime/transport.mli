(** Transport abstraction: one signature, simulated and real carriers.

    The protocol cores in this repository take a [sim] (their timer wheel)
    and a [net_send] closure; {!TRANSPORT} packages exactly that per
    endpoint, so the same unmodified XPaxos/quorum-selection stack runs over
    the discrete-event {!Qs_sim.Network} and over the real TCP transport
    ({!Tcp.Make}). What changes across implementations is only who advances
    the clock: the simulator's event loop, or a driver thread chasing the
    wall clock with {!Qs_sim.Sim.advance_to}. *)

module type TRANSPORT = sig
  type t

  type msg

  val n : t -> int
  (** Number of endpoints. *)

  val sim : t -> me:int -> Qs_sim.Sim.t
  (** Endpoint [me]'s timer wheel. Simulated transports return the shared
      simulation; the TCP transport returns a private per-endpoint wheel —
      schedule on it only from that endpoint's execution context. *)

  val send : t -> src:int -> dst:int -> msg -> unit
  (** Fire-and-forget, from [src]'s execution context. Real transports may
      shed under backpressure; delivery is at-least-effort, dedup below. *)

  val set_handler : t -> int -> (src:int -> msg -> unit) -> unit
  (** Install endpoint [i]'s receive handler; called from [i]'s execution
      context (simulation event or driver thread holding the core lock). *)

  val post : t -> int -> (unit -> unit) -> unit
  (** Run a closure in endpoint [i]'s execution context — the thread-safe
      door for injecting work (client submissions, nemesis actions) into a
      protocol stack that is itself single-threaded. *)
end

(** The simulated carrier: a thin adapter over an existing
    {!Qs_sim.Network}, sharing its simulation as every endpoint's wheel. *)
module Sim (M : sig
  type msg
end) : sig
  include TRANSPORT with type msg = M.msg

  val create : net:M.msg Qs_sim.Network.t -> t

  val net : t -> M.msg Qs_sim.Network.t
  (** The underlying network — delay models, filter chains and counters
      stay fully accessible for fault injection and accounting. *)
end
