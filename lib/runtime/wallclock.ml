(* Wall clock behind the Stime interface: one tick = one microsecond, the
   same unit the simulator uses, measured from a per-clock origin so a run
   starts at tick 0 exactly like a simulation does. Monotonic within the
   clock (never goes backwards even if the system clock is stepped). *)

type t = { origin : float; mutable last : Qs_sim.Stime.t }

let create () = { origin = Unix.gettimeofday (); last = 0 }

let now t =
  let ticks = int_of_float ((Unix.gettimeofday () -. t.origin) *. 1e6) in
  if ticks > t.last then t.last <- ticks;
  t.last

let to_seconds ticks = float_of_int ticks /. 1e6

let sleep ticks = if ticks > 0 then Thread.delay (to_seconds ticks)
