(** Wall-clock time behind the {!Qs_sim.Stime} interface.

    One tick is one microsecond — the simulator's unit — counted from the
    clock's creation, so real runs and simulated runs speak the same
    timestamps and the detector/timeout machinery needs no changes. Reads
    are clamped monotone: a stepped system clock can stall virtual time but
    never rewind it (the simulator's clock cannot go backwards either). *)

type t

val create : unit -> t
(** Origin = now; the first read is ~0. *)

val now : t -> Qs_sim.Stime.t

val to_seconds : Qs_sim.Stime.t -> float

val sleep : Qs_sim.Stime.t -> unit
(** Block the calling thread for the given ticks (no-op if non-positive). *)
