module Prng = Qs_stdx.Prng
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal

type delay_model =
  | Fixed of Stime.t
  | Uniform of { lo : Stime.t; hi : Stime.t }
  | Eventually_synchronous of {
      gst : Stime.t;
      pre_lo : Stime.t;
      pre_hi : Stime.t;
      post_lo : Stime.t;
      post_hi : Stime.t;
    }

type 'm action = Deliver | Drop | Delay of Stime.t | Duplicate of int | Replace of 'm

type trace_kind = Send | Delivered | Dropped

type 'm filter = now:Stime.t -> src:int -> dst:int -> 'm -> 'm action

type filter_id = int

(* A message held by the controlled-mode pending set. Ids increase
   monotonically in send order, so per-link FIFO order is the id order. *)
type 'm held = { id : int; h_src : int; h_dst : int; payload : 'm }

type 'm t = {
  sim : Sim.t;
  n : int;
  delay : delay_model;
  fifo : bool;
  rng : Prng.t;
  handlers : (src:int -> 'm -> unit) option array;
  mutable chain : (filter_id * 'm filter) list; (* installation order *)
  mutable next_filter_id : filter_id;
  mutable tracer :
    (kind:trace_kind -> now:Stime.t -> src:int -> dst:int -> 'm -> unit) option;
  last_arrival : Stime.t array array; (* per-link FIFO watermark *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  link_counts : int array array;
  mutable controlled : bool;
  mutable pending_q : 'm held list; (* oldest first *)
  mutable next_msg_id : int;
  m_sent : Metrics.counter;
  m_delivered : Metrics.counter;
  m_dropped : Metrics.counter;
  m_latency : Metrics.histogram;
}

let create ~sim ~n ~delay ?(fifo = false) () =
  if n <= 0 then invalid_arg "Network.create: need at least one endpoint";
  (* Journal entries are stamped with virtual time; the most recently
     created network wins, which is right for the single-simulation runs the
     harnesses perform. *)
  Journal.set_clock (fun () -> Stime.to_ms (Sim.now sim));
  {
    sim;
    n;
    delay;
    fifo;
    rng = Prng.split (Sim.prng sim);
    handlers = Array.make n None;
    chain = [];
    next_filter_id = 0;
    tracer = None;
    last_arrival = Array.make_matrix n n Stime.zero;
    sent = 0;
    delivered = 0;
    dropped = 0;
    link_counts = Array.make_matrix n n 0;
    controlled = false;
    pending_q = [];
    next_msg_id = 0;
    m_sent = Metrics.counter "net_sent_total";
    m_delivered = Metrics.counter "net_delivered_total";
    m_dropped = Metrics.counter "net_dropped_total";
    m_latency = Metrics.histogram "net_delivery_latency_ms";
  }

let n t = t.n

let sim t = t.sim

let check t i = if i < 0 || i >= t.n then invalid_arg "Network: endpoint out of range"

let set_handler t i h =
  check t i;
  t.handlers.(i) <- Some h

let add_filter t f =
  let id = t.next_filter_id in
  t.next_filter_id <- id + 1;
  t.chain <- t.chain @ [ (id, f) ];
  id

let remove_filter t id = t.chain <- List.filter (fun (id', _) -> id' <> id) t.chain

let filter_count t = List.length t.chain

(* Resolve the whole chain (in installation order) into one verdict: the
   first [Drop] wins and short-circuits, [Delay]s accumulate, the largest
   [Duplicate] count wins, and a [Replace] substitutes the payload for every
   later filter and for delivery (last substitution wins). *)
let resolve t ~src ~dst m =
  let now = Sim.now t.sim in
  let rec fold m extra copies = function
    | [] -> `Deliver (m, extra, copies)
    | f :: rest -> (
      match f ~now ~src ~dst m with
      | Drop -> `Drop
      | Deliver -> fold m extra copies rest
      | Delay d -> fold m Stime.(extra + Stdlib.max 0 d) copies rest
      | Duplicate k -> fold m extra (Stdlib.max copies k) rest
      | Replace m' -> fold m' extra copies rest)
  in
  fold m 0 1 (List.map snd t.chain)

let set_tracer t f = t.tracer <- Some f

let trace t kind ~src ~dst m =
  match t.tracer with
  | None -> ()
  | Some f -> f ~kind ~now:(Sim.now t.sim) ~src ~dst m

let base_delay t =
  match t.delay with
  | Fixed d -> d
  | Uniform { lo; hi } -> Prng.int_in t.rng lo hi
  | Eventually_synchronous { gst; pre_lo; pre_hi; post_lo; post_hi } ->
    if Stime.compare (Sim.now t.sim) gst < 0 then Prng.int_in t.rng pre_lo pre_hi
    else Prng.int_in t.rng post_lo post_hi

let deliver t ~src ~dst ~latency m =
  t.delivered <- t.delivered + 1;
  Metrics.inc t.m_delivered;
  Metrics.observe t.m_latency (Stime.to_ms latency);
  if Journal.live () then Journal.record (Journal.Net_delivered { src; dst });
  trace t Delivered ~src ~dst m;
  match t.handlers.(dst) with
  | None -> ()
  | Some h -> h ~src m

let send t ~src ~dst m =
  check t src;
  check t dst;
  if src <> dst then begin
    t.sent <- t.sent + 1;
    t.link_counts.(src).(dst) <- t.link_counts.(src).(dst) + 1
  end;
  Metrics.inc t.m_sent;
  if Journal.live () then Journal.record (Journal.Net_sent { src; dst });
  trace t Send ~src ~dst m;
  let verdict =
    if src = dst then `Deliver (m, 0, 1) else resolve t ~src ~dst m
  in
  match verdict with
  | `Drop ->
    t.dropped <- t.dropped + 1;
    Metrics.inc t.m_dropped;
    if Journal.live () then Journal.record (Journal.Net_dropped { src; dst });
    trace t Dropped ~src ~dst m
  | `Deliver (m, _, copies) when t.controlled ->
    (* Controlled mode: park every surviving copy in the pending set instead
       of scheduling it; a model checker picks the delivery order explicitly
       via [deliver_now]. Extra [Delay] latency is meaningless here — time
       only advances when the checker steps the simulation — so only the
       Drop/Duplicate verdicts of the filter chain are observable. *)
    for _ = 1 to Stdlib.max 1 copies do
      let id = t.next_msg_id in
      t.next_msg_id <- id + 1;
      t.pending_q <- t.pending_q @ [ { id; h_src = src; h_dst = dst; payload = m } ]
    done
  | `Deliver (m, extra, copies) ->
    let schedule_one () =
      let latency = if src = dst then 1 else Stime.(base_delay t + extra) in
      let arrival = Stime.(Sim.now t.sim + Stdlib.max 1 latency) in
      let arrival =
        if t.fifo && Stime.compare arrival t.last_arrival.(src).(dst) <= 0 then
          Stime.(t.last_arrival.(src).(dst) + 1)
        else arrival
      in
      t.last_arrival.(src).(dst) <- arrival;
      let latency = Stime.(arrival - Sim.now t.sim) in
      Sim.schedule_at t.sim ~at:arrival (fun () -> deliver t ~src ~dst ~latency m)
    in
    for _ = 1 to Stdlib.max 1 copies do
      schedule_one ()
    done

let broadcast t ~src ?(include_self = true) m =
  for dst = 0 to t.n - 1 do
    if dst <> src || include_self then send t ~src ~dst m
  done

let send_to t ~src ~dsts m = List.iter (fun dst -> send t ~src ~dst m) dsts

let sent_count t = t.sent

let delivered_count t = t.delivered

let dropped_count t = t.dropped

let link_sent t ~src ~dst =
  check t src;
  check t dst;
  t.link_counts.(src).(dst)

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  Array.iter (fun row -> Array.fill row 0 t.n 0) t.link_counts

(* ------------------------------------------------------------------ *)
(* Controlled mode: the model checker's choice-point interface *)

let fifo t = t.fifo

let controlled t = t.controlled

let set_controlled t on = t.controlled <- on

let pending t = List.map (fun h -> (h.id, h.h_src, h.h_dst, h.payload)) t.pending_q

let pending_count t = List.length t.pending_q

(* The subset of pending messages a schedule may deliver next: everything
   when the network is unordered, only the oldest message per (src, dst) link
   when it is FIFO — delivering a younger one first would violate the
   ordering the protocols were built on (Follower Selection, Section VIII). *)
let deliverable t =
  if not t.fifo then pending t
  else begin
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun h ->
        let link = (h.h_src, h.h_dst) in
        if Hashtbl.mem seen link then None
        else begin
          Hashtbl.replace seen link ();
          Some (h.id, h.h_src, h.h_dst, h.payload)
        end)
      t.pending_q
  end

let deliver_now t id =
  match List.find_opt (fun h -> h.id = id) t.pending_q with
  | None -> false
  | Some h ->
    t.pending_q <- List.filter (fun h' -> h'.id <> id) t.pending_q;
    deliver t ~src:h.h_src ~dst:h.h_dst ~latency:0 h.payload;
    true

(* Channel-state reset for an amnesia crash: messages already in flight to a
   process that lost its volatile state would be delivered into the reborn
   incarnation as if nothing happened; a real crash loses them with the
   socket. Dropping them here is what lets the model checker explore
   recovery interleavings soundly. *)
let drop_pending_to t dst =
  let keep, lost = List.partition (fun h -> h.h_dst <> dst) t.pending_q in
  t.pending_q <- keep;
  List.iter
    (fun h ->
      t.dropped <- t.dropped + 1;
      if Journal.live () then
        Journal.record (Journal.Net_dropped { src = h.h_src; dst = h.h_dst }))
    lost;
  List.length lost

(* ------------------------------------------------------------------ *)
(* Snapshot / restore.

   Captures everything the network itself mutates: the pending set and id
   counter, the filter chain, counters and the FIFO watermarks. Deliberately NOT captured: the simulation queue (events hold
   closures; in controlled mode no delivery events are in flight, which is
   the only mode a checker forks in), the handlers/tracer (wiring, not
   state), and the global metrics registry and journal — module-level state
   the checker must reset separately (see DESIGN.md, "Model checking"). *)

type 'm snapshot = {
  s_pending : 'm held list;
  s_next_msg_id : int;
  s_controlled : bool;
  s_chain : (filter_id * 'm filter) list;
  s_next_filter_id : filter_id;
  s_last_arrival : Stime.t array array;
  s_sent : int;
  s_delivered : int;
  s_dropped : int;
  s_link_counts : int array array;
}

let snapshot t =
  {
    s_pending = t.pending_q;
    s_next_msg_id = t.next_msg_id;
    s_controlled = t.controlled;
    s_chain = t.chain;
    s_next_filter_id = t.next_filter_id;
    s_last_arrival = Array.map Array.copy t.last_arrival;
    s_sent = t.sent;
    s_delivered = t.delivered;
    s_dropped = t.dropped;
    s_link_counts = Array.map Array.copy t.link_counts;
  }

let restore t s =
  t.pending_q <- s.s_pending;
  t.next_msg_id <- s.s_next_msg_id;
  t.controlled <- s.s_controlled;
  t.chain <- s.s_chain;
  t.next_filter_id <- s.s_next_filter_id;
  Array.iteri (fun i row -> Array.blit row 0 t.last_arrival.(i) 0 t.n) s.s_last_arrival;
  t.sent <- s.s_sent;
  t.delivered <- s.s_delivered;
  t.dropped <- s.s_dropped;
  Array.iteri (fun i row -> Array.blit row 0 t.link_counts.(i) 0 t.n) s.s_link_counts
