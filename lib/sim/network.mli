(** Simulated message-passing network.

    Reliable, asynchronous channels between [n] endpoints (paper, Section
    IV), with three extras the experiments need:

    - an {e eventually synchronous} delay model: before GST delays are drawn
      from a wide range, after GST from a narrow bounded one;
    - optional per-link FIFO delivery (the Follower Selection assumption,
      Section VIII);
    - a {e link-filter chain}: stackable hooks that may drop, further delay,
      or duplicate any message, used to implement Byzantine omission, timing
      and duplication failures on individual links. Correct-process links
      never get a filter, preserving reliability.

    All delivery is scheduled on the simulation queue; ties resolve in
    scheduling order, so runs are deterministic. *)

type delay_model =
  | Fixed of Stime.t
      (** Every message takes exactly this long. *)
  | Uniform of { lo : Stime.t; hi : Stime.t }
      (** Uniform in [lo, hi]. *)
  | Eventually_synchronous of {
      gst : Stime.t;
      pre_lo : Stime.t;
      pre_hi : Stime.t;
      post_lo : Stime.t;
      post_hi : Stime.t;
    }
      (** Before [gst], uniform in [pre_lo, pre_hi]; at or after, uniform in
          [post_lo, post_hi]. [post_hi] is the synchrony bound Δ. *)

type 'm action =
  | Deliver  (** Let the message through. *)
  | Drop  (** Omit it (omission failure on this link). *)
  | Delay of Stime.t  (** Add extra latency (timing failure). *)
  | Duplicate of int
      (** Deliver this many independent copies (duplication failure); each
          copy draws its own base delay. Values below 1 behave as 1. *)
  | Replace of 'm
      (** Substitute the payload (commission failure: equivocation variants,
          in-flight tampering). Later filters in the chain see the substituted
          payload; the last substitution wins. *)

type trace_kind = Send | Delivered | Dropped

type 'm t

val create :
  sim:Sim.t -> n:int -> delay:delay_model -> ?fifo:bool -> unit -> 'm t
(** [fifo] defaults to [false]. The network draws randomness from
    [Sim.prng]. *)

val n : _ t -> int

val sim : _ t -> Sim.t

val set_handler : 'm t -> int -> (src:int -> 'm -> unit) -> unit
(** Install the receive handler of endpoint [i]. Messages to an endpoint with
    no handler are counted as delivered but discarded. *)

type 'm filter = now:Stime.t -> src:int -> dst:int -> 'm -> 'm action

type filter_id

(** {2 Filter chain}

    Filters stack: every send (with [src <> dst]) consults every
    {!add_filter} entry in installation order. (A single-occupant
    [set_filter] slot consulted ahead of the chain existed through PR 9;
    all injectors — cluster harnesses included — now go through the chain,
    and the slot is gone.) The verdicts compose as follows:

    - the {e first} [Drop] wins and stops evaluation (later filters are not
      consulted for that message);
    - [Delay]s {e accumulate} — the extra latencies of every consulted filter
      are summed on top of the base delay-model draw;
    - for [Duplicate], the {e largest} requested copy count wins;
    - [Replace] substitutes the payload for every later filter and for
      delivery; the {e last} substitution wins;
    - [Deliver] is neutral.

    Self-sends ([src = dst]) never pass through filters. *)

val add_filter : 'm t -> 'm filter -> filter_id
(** Append a filter to the chain; the returned id removes exactly this
    filter. Fault injectors install one filter per active fault phase. *)

val remove_filter : 'm t -> filter_id -> unit
(** Remove a chained filter; unknown ids are ignored. *)

val filter_count : _ t -> int
(** Active filters in the chain. *)

val set_tracer :
  'm t -> (kind:trace_kind -> now:Stime.t -> src:int -> dst:int -> 'm -> unit) -> unit
(** Observe traffic (for the message-flow experiment E8 and debugging). *)

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Transmit. [src = dst] is allowed ("to all including self", Algorithm 1)
    and delivered after the minimum one-tick step. *)

val broadcast : 'm t -> src:int -> ?include_self:bool -> 'm -> unit
(** Send to every endpoint; [include_self] defaults to [true]. *)

val send_to : 'm t -> src:int -> dsts:int list -> 'm -> unit

(** {2 Accounting} — message-complexity experiment E6. *)

val sent_count : _ t -> int
(** Messages submitted to the network (including later-dropped ones),
    excluding self-deliveries. *)

val delivered_count : _ t -> int

val dropped_count : _ t -> int

val link_sent : _ t -> src:int -> dst:int -> int

val reset_counters : _ t -> unit

(** {2 Controlled mode} — the model checker's choice-point interface.

    With [set_controlled t true], {!send} still runs the filter chain (so
    Drop faults and Duplicate copies apply) but every surviving copy is
    {e parked} in a pending set instead of being scheduled for delivery; the
    caller then delivers messages one at a time in any order it likes with
    {!deliver_now}. This turns delivery order into an explicit choice point:
    [lib/mc] enumerates the pending set to explore all interleavings.
    [Delay] verdicts are ignored in this mode — virtual time only advances
    when the caller steps the simulation. *)

val set_controlled : _ t -> bool -> unit

val controlled : _ t -> bool

val fifo : _ t -> bool
(** Whether the network preserves per-link order (fixed at {!create}). *)

val pending : 'm t -> (int * int * int * 'm) list
(** All parked messages, oldest first: [(id, src, dst, payload)]. Ids
    increase in send order and are unique for the life of the network. *)

val pending_count : _ t -> int

val deliverable : 'm t -> (int * int * int * 'm) list
(** The pending messages a schedule may deliver next: all of them on an
    unordered network, only the oldest per (src, dst) link on a FIFO one. *)

val deliver_now : 'm t -> int -> bool
(** Deliver the parked message with this id to its destination handler right
    now (latency 0). [false] if the id is not pending (already delivered or
    never parked) — replayed schedules treat that as a skip. *)

val drop_pending_to : _ t -> int -> int
(** Drop every pending message addressed to this process and return how many
    were lost. An amnesia crash resets channel state: in-flight messages die
    with the crashed incarnation rather than being delivered into the
    recovered one. Counted as drops (and journaled as [Net_dropped]). *)

(** {2 Snapshot / restore} — fork points for schedule exploration.

    A snapshot captures the network's own mutable state: pending set, id
    counter, controlled flag, filter chain, FIFO watermarks
    and counters. It does {e not} capture the simulation event queue (fork
    only from controlled, delivery-quiescent states), the handlers, or
    module-level observability state (metrics registry, journal) — callers
    reset those separately. *)

type 'm snapshot

val snapshot : 'm t -> 'm snapshot

val restore : 'm t -> 'm snapshot -> unit
