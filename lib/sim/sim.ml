module Heap = Qs_stdx.Heap
module Prng = Qs_stdx.Prng

type event = { at : Stime.t; run : unit -> unit }

type t = {
  mutable clock : Stime.t;
  queue : event Heap.t;
  rng : Prng.t;
  mutable executed : int;
}

exception Event_budget_exhausted

let create ?(seed = 1L) () =
  {
    clock = Stime.zero;
    queue = Heap.create ~cmp:(fun a b -> Stime.compare a.at b.at);
    rng = Prng.create seed;
    executed = 0;
  }

let now t = t.clock

let prng t = t.rng

let schedule_at t ~at run =
  let at = Stime.max at t.clock in
  Heap.add t.queue { at; run }

let schedule t ~delay run =
  schedule_at t ~at:Stime.(t.clock + Stdlib.max 0 delay) run

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
    t.clock <- e.at;
    t.executed <- t.executed + 1;
    e.run ();
    true

let run ?until ?(max_events = 10_000_000) t =
  let budget = ref max_events in
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some e ->
      (match until with
       | Some limit when Stime.compare e.at limit > 0 -> continue := false
       | _ ->
         if !budget = 0 then raise Event_budget_exhausted;
         decr budget;
         ignore (step t))
  done

(* Wall-clock bridge for the real runtime: execute everything due at or
   before [at], then move the clock to [at] even if the queue holds nothing
   (or nothing that early). A plain [run ~until] leaves the clock at the last
   executed event, so a subsequent [schedule ~delay] would measure its delay
   from stale time; driver loops advancing virtual time in lockstep with a
   wall clock need the clock pinned to "now". Never moves the clock
   backwards. *)
let advance_to ?max_events t ~at =
  run ?max_events ~until:at t;
  if Stime.compare at t.clock > 0 then t.clock <- at

let events_executed t = t.executed

let pending_events t = Heap.size t.queue
