(** Discrete-event simulation core.

    A single virtual clock and an event queue. Events at equal timestamps run
    in scheduling order (the queue is FIFO among ties), so a run is a pure
    function of the seed — the determinism every bound-checking experiment
    relies on.

    The paper's assumption that "events between different modules at one
    process are processed in the order they were produced" (Section IV) holds
    because each handler runs to completion at its timestamp. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh simulation at time 0. [seed] drives all randomness (default 1). *)

val now : t -> Stime.t

val prng : t -> Qs_stdx.Prng.t
(** The simulation's root generator; [Prng.split] it for sub-components. *)

val schedule : t -> delay:Stime.t -> (unit -> unit) -> unit
(** Run a callback [delay] ticks from now. Negative delays are clamped
    to 0. *)

val schedule_at : t -> at:Stime.t -> (unit -> unit) -> unit
(** Run a callback at an absolute time (clamped to now). *)

val step : t -> bool
(** Execute the next event. [false] when the queue is empty. *)

val run : ?until:Stime.t -> ?max_events:int -> t -> unit
(** Drain the queue, stopping when empty, when the clock would pass [until],
    or after [max_events] (default 10 million — a runaway-loop backstop
    raising [Event_budget_exhausted]). *)

exception Event_budget_exhausted

val advance_to : ?max_events:int -> t -> at:Stime.t -> unit
(** Drain every event due at or before [at], then set the clock to [at]
    (never backwards). The real-runtime driver loops use this to advance a
    per-process virtual clock in lockstep with the wall clock, so timers
    scheduled between events measure their delay from actual "now" rather
    than from the last executed event. *)

val events_executed : t -> int

val pending_events : t -> int
(** Events still queued — the model checker's [Step] choices are enabled
    exactly when this is positive, and the count feeds state fingerprints. *)
