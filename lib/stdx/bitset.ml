type t = { n : int; words : int array }

let words_for n = (n + 62) / 63

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (words_for n)) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / 63) land (1 lsl (i mod 63)) <> 0

let add t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) lor (1 lsl (i mod 63))

let remove t i =
  check t i;
  t.words.(i / 63) <- t.words.(i / 63) land lnot (1 lsl (i mod 63))

(* SWAR popcount, split in 32-bit halves so the constants fit OCaml's
   63-bit native int. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  ((x * 0x01010101) lsr 24) land 0xFF

let popcount x = popcount32 (x land 0xFFFFFFFF) + popcount32 (x lsr 32)

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let remove_below t i =
  if i >= t.n then clear t
  else if i > 0 then begin
    let w = i / 63 in
    Array.fill t.words 0 w 0;
    t.words.(w) <- t.words.(w) land lnot ((1 lsl (i mod 63)) - 1)
  end

let same_cap a b = if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into dst src =
  same_cap dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let diff_into dst src =
  same_cap dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land lnot w) src.words

let inter_into dst src =
  same_cap dst src;
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) land w) src.words

let inter_cardinal a b =
  same_cap a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let disjoint a b =
  same_cap a b;
  let rec go i =
    i >= Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

(* Number of trailing zeros of a word with exactly one set bit. *)
let ntz x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
  if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
  if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
  if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
  if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
  if !x land 0x1 = 0 then incr n;
  !n

(* Word-skipping iteration: scan whole words, peel set bits with
   [x land (x - 1)]. O(words + members) instead of O(n) — the difference
   between usable and not at n = 1024, where almost every set is sparse. *)
let iter f t =
  let nw = Array.length t.words in
  for w = 0 to nw - 1 do
    let x = ref t.words.(w) in
    let base = w * 63 in
    while !x <> 0 do
      f (base + ntz (!x land - !x));
      x := !x land (!x - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let equal a b = a.n = b.n && a.words = b.words

(* Reconfiguration support: build a set over a new universe where slot [i]
   inherits membership from old slot [of_new i] (or starts absent for a
   fresh slot, [of_new i < 0]). Growth with the identity prefix mapping and
   the matching compaction are exact inverses on the surviving slots. *)
let remap t ~n ~of_new =
  if n < 0 then invalid_arg "Bitset.remap";
  let r = { n; words = Array.make (max 1 (words_for n)) 0 } in
  for i = 0 to n - 1 do
    let o = of_new i in
    if o >= 0 && o < t.n && mem t o then add r i
  done;
  r

let first t =
  let rec loop w =
    if w >= Array.length t.words then None
    else if t.words.(w) = 0 then loop (w + 1)
    else Some ((w * 63) + ntz (t.words.(w) land (-t.words.(w))))
  in
  loop 0

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (elements t)
