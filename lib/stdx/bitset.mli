(** Fixed-capacity mutable bitset over process indices.

    Used for adjacency rows, candidate sets and nonzero-cell masks in the
    graph algorithms and the suspicion matrix. Iteration and cardinality are
    word-skipping, so sparse sets over large universes (n = 1024 and beyond)
    cost O(words + members), not O(n). *)

type t

val create : int -> t
(** [create n] is an empty set over universe [\[0, n)]. *)

val capacity : t -> int

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val cardinal : t -> int

val is_empty : t -> bool

val clear : t -> unit

val remove_below : t -> int -> unit
(** [remove_below t i] removes every member [< i] — whole-word fills, not a
    per-element loop. *)

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. Capacities must match. *)

val diff_into : t -> t -> unit
(** [dst := dst \ src]. *)

val inter_into : t -> t -> unit
(** [dst := dst ∩ src]. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [cardinal (a ∩ b)] without materializing the
    intersection — one popcount pass over the word arrays. Capacities must
    match. *)

val disjoint : t -> t -> bool
(** [a ∩ b = ∅], short-circuiting on the first overlapping word. *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t

val equal : t -> t -> bool

val remap : t -> n:int -> of_new:(int -> int) -> t
(** [remap t ~n ~of_new] is a fresh set over universe [\[0, n)] where new
    slot [i] is a member iff [of_new i] names a member of [t]; [of_new i <
    0] marks a fresh slot (absent). Used by reconfiguration: grow for
    joins, compacting remap for leaves/ejections. *)

val first : t -> int option
(** Smallest member. *)

val pp : Format.formatter -> t -> unit
