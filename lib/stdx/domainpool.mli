(** Portable fork/join parallelism over OCaml domains.

    On OCaml 5 this wraps [Domain.spawn]/[Domain.join]; on 4.14 the same
    interface degrades to a sequential loop, so callers can be written once
    and stay deterministic on both legs of the build matrix. Deterministic
    results must come from the caller's merge discipline — this module only
    promises that [run ~jobs f] evaluates [f 0 .. f (jobs-1)] exactly once
    each and returns the results in index order.

    The module also exposes domain-local storage ({!local}/{!get}/{!set}),
    backed by [Domain.DLS] on OCaml 5 and a plain mutable cell on 4.14
    (where there is only one domain). [lib/obs] uses it to give every
    worker domain its own default metrics registry and journal, so
    systems built inside a worker never race on shared [Hashtbl]s. *)

val parallel : bool
(** [true] iff [run] actually spawns domains (OCaml >= 5). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] on OCaml 5; [1] on 4.14. *)

val run : jobs:int -> (int -> 'a) -> 'a array
(** [run ~jobs f] evaluates [f k] for every shard index [k] in
    [0 .. jobs-1] — shard 0 on the calling domain, the rest on fresh
    domains (sequentially, in order, on 4.14) — and returns the results
    indexed by shard. Exceptions from any shard are re-raised after all
    spawned domains have been joined. Requires [jobs >= 1]. *)

type 'a local
(** A domain-local slot: each domain sees its own value, created on first
    [get] from the slot's initializer. *)

val local : (unit -> 'a) -> 'a local
(** [local init] declares a slot; [init] runs once per domain, lazily. *)

val get : 'a local -> 'a

val set : 'a local -> 'a -> unit
(** Replace the calling domain's value (other domains are unaffected). *)
