(* OCaml >= 5 implementation: real domains + Domain.DLS. Selected by a dune
   rule that copies this file to domainpool.ml when the compiler supports
   domains; see domainpool_serial.ml for the 4.14 fallback. *)

let parallel = true

let recommended () = Domain.recommended_domain_count ()

let run ~jobs f =
  if jobs < 1 then invalid_arg "Domainpool.run: jobs must be >= 1";
  if jobs = 1 then [| f 0 |]
  else begin
    let spawned =
      Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> f (i + 1)))
    in
    (* Shard 0 runs here so the caller's domain contributes instead of
       blocking in join; its exception must not leak before the spawned
       domains are joined, or they would outlive the call. *)
    let first = try Ok (f 0) with e -> Error e in
    let rest =
      Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) spawned
    in
    let all = Array.append [| first |] rest in
    Array.map (function Ok v -> v | Error e -> raise e) all
  end

type 'a local = 'a Domain.DLS.key

let local init = Domain.DLS.new_key init

let get = Domain.DLS.get

let set = Domain.DLS.set
