(* OCaml 4.14 fallback: one domain, sequential shards, plain cells for
   "domain-local" storage. Selected by a dune rule that copies this file to
   domainpool.ml on compilers without domains. *)

let parallel = false

let recommended () = 1

let run ~jobs f =
  if jobs < 1 then invalid_arg "Domainpool.run: jobs must be >= 1";
  let results = Array.make jobs None in
  for k = 0 to jobs - 1 do
    results.(k) <- Some (f k)
  done;
  Array.map Option.get results

type 'a local = { mutable value : 'a option; init : unit -> 'a }

let local init = { value = None; init }

let get l =
  match l.value with
  | Some v -> v
  | None ->
    let v = l.init () in
    l.value <- Some v;
    v

let set l v = l.value <- Some v
