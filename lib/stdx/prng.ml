(* SplitMix64: fast, high-quality 64-bit generator with trivial seeding.
   Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy g = { state = g.state }

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = create (next_int64 g)

(* Random-access decorrelated stream #i: mix the current state with i+1
   gamma steps without advancing [g]. Unlike [split], substreams can be
   drawn in any order (or in parallel from a copied root) and substream i
   is the same generator regardless of how many others were created —
   which is what per-walk seeding in the sharded fuzzer needs. *)
let substream g i =
  if i < 0 then invalid_arg "Prng.substream: index must be >= 0";
  create (mix (Int64.add g.state (Int64.mul golden_gamma (Int64.of_int (i + 1)))))

(* Non-negative 62-bit int from the high bits. *)
let next_nonneg g = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = (0x3FFFFFFFFFFFFFFF / bound) * bound in
  let rec loop () =
    let r = next_nonneg g in
    if r < max then r mod bound else loop ()
  in
  loop ()

let int_in g lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int g (hi - lo + 1)

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 g) 11) in
  x *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next_int64 g) 1L = 1L

let chance g p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float g 1.0 < p

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample g k xs =
  let a = Array.of_list xs in
  shuffle g a;
  let k = min k (Array.length a) in
  Array.to_list (Array.sub a 0 k)
