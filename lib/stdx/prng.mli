(** Deterministic pseudo-random number generator (SplitMix64).

    Every randomized component in this repository takes an explicit [Prng.t]
    instead of using the global [Random] state, so that simulations are fully
    reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds give equal
    streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator seeded from it, for
    handing a decorrelated stream to a sub-component. *)

val substream : t -> int -> t
(** [substream g i] is a decorrelated generator for substream [i >= 0]
    without advancing [g]: the same [i] always yields the same stream, in
    whatever order substreams are drawn. This is the random-access
    counterpart of {!split}, used wherever a draw must be a pure function
    of its coordinates rather than of evaluation order.

    Substream index allocation (to keep independent consumers off each
    other's streams, document new uses here):
    - {e fuzzer shard walks}: substream [i] of the run seed is walk [i],
      independent of which domain executes it ([--jobs] byte-identity);
    - {e intersection sampling}: {!Qs_core.Quorum_intersection.check_sampled}
      draws pairs from substream [0] of its own caller-provided seed;
    - {e lottery tickets}: {!Qs_core.Selection_policy.Seeded_lottery} chains
      [seed → cepoch → epoch → vertex] — one nesting level per coordinate,
      so every (config epoch, detector epoch, process) triple owns a
      disjoint stream and the ticket is independent of prior draws. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance g p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample g k xs] draws [min k (length xs)] distinct elements of [xs],
    preserving no particular order. *)
