module Sim = Qs_sim.Sim
module Detector = Qs_fd.Detector
module Timeout = Qs_fd.Timeout
module QS = Qs_core.Quorum_select
module Pid = Qs_core.Pid
module Auth = Qs_crypto.Auth
module Metrics = Qs_obs.Metrics
module Journal = Qs_obs.Journal

type mode = Enumeration | Quorum_selection

type config = {
  n : int;
  f : int;
  mode : mode;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Timeout.strategy;
}

let quorum_size c = c.n - c.f

type fault = Honest | Mute | Omit_to of Pid.t list | Equivocate of Pid.t

type phase =
  | Normal
  | Leading_collect of (Pid.t, Xmsg.entry list) Hashtbl.t
  | Awaiting_new_view
  | Passive

type t = {
  config : config;
  me : Pid.t;
  auth : Auth.t;
  sim : Sim.t;
  net_send : dst:Pid.t -> Xmsg.t -> unit;
  on_execute : slot:int -> Xmsg.request -> unit;
  on_view_change : view:int -> group:Pid.t list -> unit;
  mutable fd : Xmsg.t Detector.t option; (* set right after creation *)
  mutable timeouts : Timeout.t option; (* the detector's, kept for durability *)
  mutable qsel : QS.t option;
  log : Xlog.t;
  mutable view : int;
  mutable grp : Pid.t list;
  mutable phase : phase;
  mutable fault : fault;
  mutable view_changes : int;
  mutable detections : Pid.t list;
  proposed : (int * int, int) Hashtbl.t; (* (client, rid) -> slot *)
  awaiting_prepare : (int * int, unit) Hashtbl.t; (* expectation dedupe *)
  mutable exec_cursor : int;
  m_commits : Metrics.counter;
  m_executed : Metrics.counter;
  m_view_changes : Metrics.counter;
  m_detections : Metrics.counter;
  g_view : Metrics.gauge;
}

let me t = t.me

let fd t = Option.get t.fd

let set_fault t fault = t.fault <- fault

let view t = t.view

let group t = t.grp

let leader t = match t.grp with l :: _ -> l | [] -> assert false

let is_leader t = leader t = t.me

let in_group t = List.mem t.me t.grp

let q t = quorum_size t.config

(* ------------------------------------------------------------------ *)
(* Sending *)

let fault_allows t dst =
  match t.fault with
  | Honest | Equivocate _ -> true
  | Mute -> false
  | Omit_to victims -> not (List.mem dst victims)

let send t ~dst body =
  if dst = t.me || fault_allows t dst then
    t.net_send ~dst (Xmsg.seal t.auth ~sender:t.me body)

let send_group t body = List.iter (fun dst -> if dst <> t.me then send t ~dst body) t.grp

let send_all_including_self t body =
  for dst = 0 to t.config.n - 1 do
    send t ~dst body
  done

(* ------------------------------------------------------------------ *)
(* Expectations (Section V-A) *)

let expect_commit t ~from ~view ~slot =
  Detector.expect (fd t) ~from ~tag:"commit" (fun m ->
      match m.Xmsg.body with
      | Xmsg.Commit { cview; cslot; _ } -> cview = view && cslot = slot
      | _ -> false)

let expect_prepare_slot t ~view ~slot =
  Detector.expect (fd t) ~from:(leader t) ~tag:"prepare-slot" (fun m ->
      match m.Xmsg.body with
      | Xmsg.Prepare sp -> sp.Xmsg.prepare.Xmsg.view = view && sp.Xmsg.prepare.Xmsg.slot = slot
      | _ -> false)

(* Expectations whose fulfilment depends on third parties get longer
   deadlines, ordered so that blame lands where the dependency chain
   actually broke (the same principle as the chain substrate's
   position-scaled timeouts):
   - a COMMIT or a specific PREPARE depends only on its sender: 1x;
   - a VIEW-CHANGE depends on the member's own quorum-selection output
     converging first: 3x;
   - a PREPARE for a fresh request and the NEW-VIEW depend on the whole
     view-change round trip: 4-5x.
   The multiplier applies to the sender's *adapted* timeout, not the
   initial one: on a network slower than the initial timeout, adaptation
   (from late arrivals, including those matching expectations already
   cancelled by a view change) is what eventually stops the suspect /
   reconfigure / suspect churn, and a non-adapting multi-round deadline
   would just restart it. *)

let expect_prepare_request t ~view ~request =
  let from = leader t in
  Detector.expect (fd t) ~from ~tag:"prepare-req"
    ~timeout:(4 * Detector.current_timeout (fd t) from)
    (fun m ->
      match m.Xmsg.body with
      | Xmsg.Prepare sp ->
        sp.Xmsg.prepare.Xmsg.view >= view && sp.Xmsg.prepare.Xmsg.request = request
      | _ -> false)

let expect_view_change t ~from ~view =
  Detector.expect (fd t) ~from ~tag:"view-change"
    ~timeout:(3 * Detector.current_timeout (fd t) from)
    (fun m ->
      match m.Xmsg.body with Xmsg.View_change { vview; _ } -> vview = view | _ -> false)

let expect_new_view t ~from ~view =
  Detector.expect (fd t) ~from ~tag:"new-view"
    ~timeout:(5 * Detector.current_timeout (fd t) from)
    (fun m ->
      match m.Xmsg.body with Xmsg.New_view { nview; _ } -> nview = view | _ -> false)

let detect t culprit =
  t.detections <- culprit :: t.detections;
  Metrics.inc t.m_detections;
  Detector.detected (fd t) culprit

(* ------------------------------------------------------------------ *)
(* Commit and execution *)

let try_execute t =
  let continue = ref true in
  while !continue do
    match Xlog.find t.log t.exec_cursor with
    | Some ({ committed = true; executed = false; sp = Some sp; _ } : Xlog.entry) ->
      let e = Xlog.entry t.log t.exec_cursor in
      e.Xlog.executed <- true;
      Metrics.inc t.m_executed;
      t.on_execute ~slot:t.exec_cursor sp.Xmsg.prepare.Xmsg.request;
      t.exec_cursor <- t.exec_cursor + 1
    | _ -> continue := false
  done

let check_commit t (e : Xlog.entry) =
  match e.Xlog.sp with
  | Some sp when not e.Xlog.committed ->
    if List.for_all (fun k -> List.mem k e.Xlog.votes) t.grp then begin
      e.Xlog.committed <- true;
      Metrics.inc t.m_commits;
      if Journal.live () then
        Journal.record
          (Journal.Commit { who = t.me; slot = sp.Xmsg.prepare.Xmsg.slot });
      try_execute t
    end
  | _ -> ()

(* Adopt a prepare (from the leader directly, or embedded in a COMMIT):
   send our own COMMIT to the group and expect everyone else's. [except]
   lists processes whose COMMIT already arrived — the paper's first
   subtlety: "a COMMIT message from process k may arrive before the PREPARE
   … in this case, no expectation should be issued for process k". *)
let adopt_prepare ?(except = []) t (e : Xlog.entry) sp =
  e.Xlog.sp <- Some sp;
  Xlog.record_vote e t.me;
  let slot = sp.Xmsg.prepare.Xmsg.slot in
  send_group t (Xmsg.Commit { cview = t.view; cslot = slot; csp = sp });
  List.iter
    (fun k ->
      if k <> t.me && not (List.mem k except) then
        expect_commit t ~from:k ~view:t.view ~slot)
    t.grp;
  check_commit t e

(* ------------------------------------------------------------------ *)
(* Normal case handlers *)

let handle_prepare t ~src sp =
  let p = sp.Xmsg.prepare in
  if
    in_group t && src = leader t && p.Xmsg.view = t.view
    && Xmsg.verify_prepare t.auth ~leader:src sp
  then begin
    let e = Xlog.entry t.log p.Xmsg.slot in
    match e.Xlog.sp with
    | None -> adopt_prepare t e sp
    | Some stored ->
      let sp' = stored.Xmsg.prepare in
      if sp'.Xmsg.view = p.Xmsg.view && sp'.Xmsg.request <> p.Xmsg.request then
        (* Two validly signed PREPAREs for one view/slot: equivocation. *)
        detect t src
      else if sp'.Xmsg.view < p.Xmsg.view then begin
        (* Re-prepare at a newer view (after view change). *)
        e.Xlog.votes <- [];
        adopt_prepare t e sp
      end
  end

let handle_commit t ~src (cview, cslot, csp) =
  if in_group t && List.mem src t.grp && cview = t.view then begin
    let p = csp.Xmsg.prepare in
    if
      (not (Xmsg.verify_prepare t.auth ~leader:(leader t) csp))
      || p.Xmsg.view <> cview || p.Xmsg.slot <> cslot
    then detect t src (* malformed COMMIT (Section V-A, second subtlety) *)
    else begin
      let e = Xlog.entry t.log cslot in
      (match e.Xlog.sp with
       | None ->
         (* COMMIT before PREPARE (Fig. 3): adopt the embedded prepare,
            commit ourselves (without expecting the sender's COMMIT again —
            first subtlety), and expect the PREPARE from the leader (third
            subtlety). *)
         adopt_prepare ~except:[ src ] t e csp;
         if src <> leader t then expect_prepare_slot t ~view:cview ~slot:cslot
       | Some stored ->
         let sp' = stored.Xmsg.prepare in
         if sp'.Xmsg.view = p.Xmsg.view && sp'.Xmsg.request <> p.Xmsg.request then
           (* The embedded prepare conflicts with ours: the leader signed
              both, so the leader equivocated. *)
           detect t (leader t));
      (match e.Xlog.sp with
       | Some stored when stored.Xmsg.prepare.Xmsg.request = p.Xmsg.request ->
         Xlog.record_vote e src;
         check_commit t e
       | _ -> ())
    end
  end

(* ------------------------------------------------------------------ *)
(* Proposals *)

let propose_at t ~slot request =
  Hashtbl.replace t.proposed (request.Xmsg.client, request.Xmsg.rid) slot;
  let prepare = { Xmsg.view = t.view; slot; request } in
  let sp = Xmsg.sign_prepare t.auth ~leader:t.me prepare in
  let e = Xlog.entry t.log slot in
  e.Xlog.sp <- Some sp;
  e.Xlog.votes <- [];
  Xlog.record_vote e t.me;
  List.iter
    (fun dst ->
      if dst <> t.me then begin
        let body =
          match t.fault with
          | Equivocate victim when dst = victim ->
            let evil = { request with Xmsg.op = "EVIL:" ^ request.Xmsg.op } in
            Xmsg.Prepare (Xmsg.sign_prepare t.auth ~leader:t.me { prepare with Xmsg.request = evil })
          | _ -> Xmsg.Prepare sp
        in
        send t ~dst body;
        send t ~dst (Xmsg.Commit { cview = t.view; cslot = slot; csp = sp })
      end)
    t.grp;
  List.iter (fun k -> if k <> t.me then expect_commit t ~from:k ~view:t.view ~slot) t.grp;
  check_commit t e

let submit t request =
  if in_group t then begin
    let key = (request.Xmsg.client, request.Xmsg.rid) in
    match Hashtbl.find_opt t.proposed key with
    | Some slot when is_leader t -> begin
      (* Known request: re-propose at the same slot if it went stale. *)
      match Xlog.find t.log slot with
      | Some ({ committed = false; sp = Some sp; _ } : Xlog.entry)
        when sp.Xmsg.prepare.Xmsg.view < t.view ->
        propose_at t ~slot request
      | _ -> ()
    end
    | Some _ -> ()
    | None ->
      if is_leader t then propose_at t ~slot:(Xlog.next_slot t.log) request
      else if not (Hashtbl.mem t.awaiting_prepare key) then begin
        Hashtbl.replace t.awaiting_prepare key ();
        expect_prepare_request t ~view:t.view ~request
      end
  end

(* ------------------------------------------------------------------ *)
(* View change *)

let entry_provenance_ok t (e : Xmsg.entry) =
  let lead = Enumeration.leader ~n:t.config.n ~q:(q t) ~view:e.Xmsg.eview in
  Xmsg.verify_prepare t.auth ~leader:lead
    {
      Xmsg.prepare = { Xmsg.view = e.Xmsg.eview; slot = e.Xmsg.eslot; request = e.Xmsg.erequest };
      psig = e.Xmsg.epsig;
    }

let merge_logs lists =
  let best : (int, Xmsg.entry) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun entries ->
      List.iter
        (fun (e : Xmsg.entry) ->
          match Hashtbl.find_opt best e.Xmsg.eslot with
          | None -> Hashtbl.replace best e.Xmsg.eslot e
          | Some cur ->
            let better =
              (* committed entries win; then highest view *)
              (e.Xmsg.ecommitted && not cur.Xmsg.ecommitted)
              || (e.Xmsg.ecommitted = cur.Xmsg.ecommitted && e.Xmsg.eview > cur.Xmsg.eview)
            in
            if better then Hashtbl.replace best e.Xmsg.eslot e)
        entries)
    lists;
  let merged = Hashtbl.fold (fun _ e acc -> e :: acc) best [] in
  List.sort (fun a b -> compare a.Xmsg.eslot b.Xmsg.eslot) merged

let install_committed t (e : Xmsg.entry) =
  let sp =
    {
      Xmsg.prepare = { Xmsg.view = e.Xmsg.eview; slot = e.Xmsg.eslot; request = e.Xmsg.erequest };
      psig = e.Xmsg.epsig;
    }
  in
  Xlog.adopt t.log e ~view:t.view ~sp;
  Hashtbl.replace t.proposed (e.Xmsg.erequest.Xmsg.client, e.Xmsg.erequest.Xmsg.rid)
    e.Xmsg.eslot

let finish_collect t tbl =
  if List.for_all (fun k -> Hashtbl.mem tbl k) t.grp then begin
    let merged = merge_logs (Hashtbl.fold (fun _ es acc -> es :: acc) tbl []) in
    send_group t (Xmsg.New_view { nview = t.view; nlog = merged });
    t.phase <- Normal;
    List.iter
      (fun (e : Xmsg.entry) ->
        if e.Xmsg.ecommitted then install_committed t e
        else propose_at t ~slot:e.Xmsg.eslot e.Xmsg.erequest)
      merged;
    try_execute t
  end

let rec move_to_view t v =
  if v > t.view then begin
    t.view <- v;
    t.grp <- Enumeration.group ~n:t.config.n ~q:(q t) ~view:v;
    t.view_changes <- t.view_changes + 1;
    Metrics.inc t.m_view_changes;
    Metrics.set t.g_view (float_of_int v);
    if Journal.live () then
      Journal.record (Journal.View_change { who = t.me; view = v; group = t.grp });
    Hashtbl.reset t.awaiting_prepare;
    Detector.cancel_all (fd t); (* Section V-B: expectations no longer valid *)
    Logs.debug ~src:Qs_stdx.Debug.xpaxos (fun m ->
        m "p%d VIEW %d group %s" (t.me + 1) v (Pid.set_to_string t.grp));
    t.on_view_change ~view:v ~group:t.grp;
    (match t.config.mode with
     | Enumeration ->
       (* Gossip the move: re-broadcasting the SUSPECT that justifies view v
          keeps correct processes' views synchronized even when the message
          that moved us came over a faulty process's selective links. *)
       send_all_including_self t (Xmsg.Suspect { sview = v - 1 });
       (* Permanent detections survive cancel_all but produce no fresh
          ⟨SUSPECTED⟩ event; if the new group contains one, skip it directly
          (enumeration mode's equivalent of "suspect all quorums ordered
          before a clean one"). Scheduled to keep the view-skip iterative. *)
       if List.exists (fun s -> List.mem s t.grp) (Detector.suspected (fd t)) then
         Sim.schedule t.sim ~delay:0 (fun () ->
             if t.view = v then move_to_view t (v + 1))
     | Quorum_selection -> ());
    if not (in_group t) then t.phase <- Passive
    else begin
      let entries = Xlog.to_entries t.log in
      if is_leader t then begin
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace tbl t.me entries;
        t.phase <- Leading_collect tbl;
        List.iter (fun k -> if k <> t.me then expect_view_change t ~from:k ~view:v) t.grp;
        finish_collect t tbl (* singleton group commits immediately *)
      end
      else begin
        t.phase <- Awaiting_new_view;
        send t ~dst:(leader t) (Xmsg.View_change { vview = v; vlog = entries });
        expect_new_view t ~from:(leader t) ~view:v
      end
    end
  end

let handle_view_change t ~src (vview, vlog) =
  if vview > t.view then move_to_view t vview;
  if vview = t.view && is_leader t then
    match t.phase with
    | Leading_collect tbl when List.mem src t.grp && not (Hashtbl.mem tbl src) ->
      if List.for_all (entry_provenance_ok t) vlog then begin
        Hashtbl.replace tbl src vlog;
        finish_collect t tbl
      end
      else detect t src
    | _ -> ()

let handle_new_view t ~src (nview, nlog) =
  if nview > t.view then move_to_view t nview;
  if nview = t.view && src = leader t && in_group t && not (is_leader t) then begin
    if List.for_all (entry_provenance_ok t) nlog then begin
      List.iter (fun (e : Xmsg.entry) -> if e.Xmsg.ecommitted then install_committed t e) nlog;
      t.phase <- Normal;
      try_execute t
    end
    else detect t src
  end

(* ------------------------------------------------------------------ *)
(* Suspicion plumbing *)

let on_suspected t suspects =
  match t.config.mode with
  | Quorum_selection -> QS.handle_suspected (Option.get t.qsel) suspects
  | Enumeration ->
    (* move_to_view broadcasts the justifying SUSPECT itself. *)
    if List.exists (fun s -> List.mem s t.grp) suspects then move_to_view t (t.view + 1)

let on_qs_quorum t quorum =
  let target =
    Enumeration.view_for ~n:t.config.n ~q:(q t) ~at_least:t.view ~group:quorum
  in
  if target > t.view then move_to_view t target

(* ------------------------------------------------------------------ *)
(* Receive path *)

let process t ~src msg =
  match msg.Xmsg.body with
  | Xmsg.Prepare sp -> handle_prepare t ~src sp
  | Xmsg.Commit { cview; cslot; csp } -> handle_commit t ~src (cview, cslot, csp)
  | Xmsg.Suspect { sview } ->
    if t.config.mode = Enumeration && sview >= t.view then move_to_view t (sview + 1)
  | Xmsg.View_change { vview; vlog } -> handle_view_change t ~src (vview, vlog)
  | Xmsg.New_view { nview; nlog } -> handle_new_view t ~src (nview, nlog)
  | Xmsg.Qsel update -> (
    match t.qsel with
    | Some qsel -> QS.handle_update qsel update
    | None -> ())

let receive t ~src msg =
  if Xmsg.verify t.auth msg && msg.Xmsg.sender = src then
    Detector.receive (fd t) ~src msg

(* ------------------------------------------------------------------ *)

let create config ~me ~auth ~sim ~net_send ?(on_execute = fun ~slot:_ _ -> ())
    ?(on_view_change = fun ~view:_ ~group:_ -> ()) () =
  if config.n <= 0 || config.f < 0 || config.n - config.f <= config.f then
    invalid_arg "Replica.create: need n - f > f";
  if me < 0 || me >= config.n then invalid_arg "Replica.create: me out of range";
  let labels = [ ("p", string_of_int me) ] in
  let t =
    {
      config;
      me;
      auth;
      sim;
      net_send;
      on_execute;
      on_view_change;
      fd = None;
      timeouts = None;
      qsel = None;
      log = Xlog.create ();
      view = 0;
      grp = Enumeration.group ~n:config.n ~q:(quorum_size config) ~view:0;
      phase = Normal;
      fault = Honest;
      view_changes = 0;
      detections = [];
      proposed = Hashtbl.create 64;
      awaiting_prepare = Hashtbl.create 64;
      exec_cursor = 0;
      m_commits = Metrics.counter ~labels "xp_commits_total";
      m_executed = Metrics.counter ~labels "xp_executed_total";
      m_view_changes = Metrics.counter ~labels "xp_view_changes_total";
      m_detections = Metrics.counter ~labels "xp_detections_total";
      g_view = Metrics.gauge ~labels "xp_view";
    }
  in
  let timeouts = Timeout.create ~n:config.n ~initial:config.initial_timeout config.timeout_strategy in
  t.timeouts <- Some timeouts;
  t.fd <-
    Some
      (Detector.create ~sim ~me ~n:config.n ~timeouts
         ~deliver:(fun ~src m -> process t ~src m)
         ~on_suspected:(fun s -> on_suspected t s)
         ());
  (match config.mode with
   | Enumeration -> ()
   | Quorum_selection ->
     t.qsel <-
       Some
         (QS.create
            { QS.n = config.n; f = config.f }
            ~me ~auth
            ~send:(fun update -> send_all_including_self t (Xmsg.Qsel update))
            ~on_quorum:(fun quorum -> on_qs_quorum t quorum)
            ()));
  t

let executed t = Xlog.executed_prefix t.log

let committed_count t = Xlog.committed_count t.log

let view_changes t = t.view_changes

let detector t = fd t

let detections t = t.detections

let quorum_selector t = t.qsel

let timeouts t = Option.get t.timeouts

(* ------------------------------------------------------------------ *)
(* Crash-recovery (amnesia) *)

let export_log_prefix t =
  List.filter (fun (e : Xmsg.entry) -> e.Xmsg.ecommitted) (Xlog.to_entries t.log)

(* Committed entries only, with the same provenance check a view-change
   recipient applies: the original leader-of-[eview] signature must verify,
   so a corrupted durable snapshot or a fabricated StateResp supplement
   cannot smuggle in an uncommitted request. *)
let import_log_prefix t entries =
  List.iter
    (fun (e : Xmsg.entry) ->
      if e.Xmsg.ecommitted && entry_provenance_ok t e then install_committed t e)
    entries;
  try_execute t

let catch_up_view t ~view = if view > t.view then move_to_view t view

(* Wipe everything volatile and restart at the durable [view]: the log is
   emptied (the durable committed prefix comes back via
   [import_log_prefix]), proposals and expectation dedup die with it, the
   detector forgets suspicions (keeping its adapted timeouts — the durable
   part) and the embedded selector goes dormant until a rejoin supplies
   recovered state. *)
let amnesia_restart t ~view =
  if view < 0 then invalid_arg "Replica.amnesia_restart: negative view";
  Xlog.clear t.log;
  Hashtbl.reset t.proposed;
  Hashtbl.reset t.awaiting_prepare;
  t.exec_cursor <- 0;
  t.detections <- [];
  t.view <- view;
  t.grp <- Enumeration.group ~n:t.config.n ~q:(q t) ~view;
  t.phase <- (if in_group t then Normal else Passive);
  Metrics.set t.g_view (float_of_int view);
  Detector.amnesia (fd t);
  match t.qsel with Some qsel -> QS.amnesia qsel | None -> ()

(* Canonical encoding of the replica's protocol-visible state for the model
   checker's fingerprints. Covers the view/group/phase machine, the log
   (prepares, votes, commit/execute marks), the execution cursor, permanent
   detections, the detector's suspect set and open-expectation count, and
   the quorum-selection instance. Not covered: adapted timeout values and
   expectation deadlines (pure timing state — two states differing only
   there can produce different Step-choice orders, a deliberate small-scope
   approximation documented in DESIGN.md). *)
let fingerprint t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "v%d|g%s|x%d|" t.view
       (String.concat "," (List.map string_of_int t.grp))
       t.exec_cursor);
  (match t.phase with
   | Normal -> Buffer.add_string b "N"
   | Passive -> Buffer.add_string b "P"
   | Awaiting_new_view -> Buffer.add_string b "A"
   | Leading_collect tbl ->
     let members = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
     Buffer.add_string b
       ("L" ^ String.concat "," (List.map string_of_int (List.sort compare members))));
  for slot = 0 to Xlog.max_slot t.log do
    match Xlog.find t.log slot with
    | None -> ()
    | Some e ->
      let sp =
        match e.Xlog.sp with
        | None -> "-"
        | Some sp ->
          Printf.sprintf "%d:%d.%d:%s" sp.Xmsg.prepare.Xmsg.view
            sp.Xmsg.prepare.Xmsg.request.Xmsg.client sp.Xmsg.prepare.Xmsg.request.Xmsg.rid
            sp.Xmsg.prepare.Xmsg.request.Xmsg.op
      in
      Buffer.add_string b
        (Printf.sprintf "|s%d=%s/%s%s%s" slot sp
           (String.concat "," (List.map string_of_int (List.sort compare e.Xlog.votes)))
           (if e.Xlog.committed then "c" else "")
           (if e.Xlog.executed then "x" else ""))
  done;
  Buffer.add_string b
    (Printf.sprintf "|d%s|su%s|oe%d"
       (String.concat "," (List.map string_of_int (List.sort_uniq compare t.detections)))
       (String.concat "," (List.map string_of_int (Detector.suspected (fd t))))
       (Detector.open_expectations (fd t)));
  (match t.qsel with
   | None -> ()
   | Some qsel -> Buffer.add_string b ("|qs:" ^ QS.fingerprint qsel));
  Buffer.contents b
