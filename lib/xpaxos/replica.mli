(** An XPaxos replica with the paper's failure-detector integration
    (Section V).

    Normal case (Fig. 2): the lowest-id member of the view's synchronous
    group leads; it sends PREPARE, every group member sends COMMIT (which
    embeds the signed PREPARE — second subtlety of Section V-A) to every
    other member, and a slot commits once a member holds the PREPARE plus
    COMMITs from all other members. Committed slots execute in order.

    Expectations issued to the failure detector, per Section V-A:
    - on sending or adopting a PREPARE: expect a matching COMMIT from every
      other group member;
    - on a COMMIT arriving before its PREPARE (Fig. 3): adopt the embedded
      PREPARE, send our own COMMIT, and additionally expect the PREPARE from
      the leader (third subtlety);
    - on learning a client request while not leading: expect a PREPARE
      containing it from the leader;
    - during view change: the new leader expects VIEW-CHANGE from every
      group member, members expect NEW-VIEW from the leader; all previous
      expectations are cancelled on a view switch (Section V-B).

    Detections (⟨DETECTED⟩): malformed COMMIT → its sender; two validly
    signed PREPAREs for the same view/slot with different requests →
    the leader (equivocation).

    View change is deliberately lighter than production XPaxos: VIEW-CHANGE
    carries the sender's log with original prepare signatures for
    provenance, the new leader merges (committed entries win, then highest
    view), broadcasts NEW-VIEW, and re-prepares all uncommitted entries at
    the new view. Commit certificates are not carried, so a Byzantine
    {e new leader} could fabricate a committed flag — within the XFT model
    the experiments run in (≤ f faulty, correct quorum after GST) this does
    not arise; see DESIGN.md §2. *)

type mode =
  | Enumeration
      (** XPaxos baseline: SUSPECT messages advance the view by one; view v
          uses group [Enumeration.group ~view:v]. *)
  | Quorum_selection
      (** The paper's contribution: an embedded Algorithm-1 instance turns
          SUSPECTED sets into quorums; ⟨QUORUM, Q⟩ jumps straight to the
          first view whose group is Q. *)

type config = {
  n : int;
  f : int;
  mode : mode;
  initial_timeout : Qs_sim.Stime.t;
  timeout_strategy : Qs_fd.Timeout.strategy;
}

val quorum_size : config -> int

type fault =
  | Honest
  | Mute  (** sends nothing at all (omission of every message) *)
  | Omit_to of Qs_core.Pid.t list  (** omission failures on individual links *)
  | Equivocate of Qs_core.Pid.t
      (** as leader, send the victim a conflicting PREPARE *)

type t

val create :
  config ->
  me:Qs_core.Pid.t ->
  auth:Qs_crypto.Auth.t ->
  sim:Qs_sim.Sim.t ->
  net_send:(dst:Qs_core.Pid.t -> Xmsg.t -> unit) ->
  ?on_execute:(slot:int -> Xmsg.request -> unit) ->
  ?on_view_change:(view:int -> group:Qs_core.Pid.t list -> unit) ->
  unit ->
  t

val me : t -> Qs_core.Pid.t

val set_fault : t -> fault -> unit

val receive : t -> src:Qs_core.Pid.t -> Xmsg.t -> unit
(** Wire this as the network handler. Verifies the signature, feeds the
    failure detector, then processes. *)

val submit : t -> Xmsg.request -> unit
(** A client request reaches this replica. Leaders propose it; group members
    start expecting the leader's PREPARE; others ignore it. Duplicate
    (client, rid) pairs are proposed at most once. *)

val view : t -> int

val group : t -> Qs_core.Pid.t list

val leader : t -> Qs_core.Pid.t

val is_leader : t -> bool

val in_group : t -> bool

val executed : t -> Xmsg.request list
(** Executed prefix, in order — the replicated state machine's history. *)

val committed_count : t -> int

val view_changes : t -> int
(** Number of view switches this replica performed. *)

val detector : t -> Xmsg.t Qs_fd.Detector.t

val detections : t -> Qs_core.Pid.t list
(** ⟨DETECTED⟩ events this replica raised (culprits, latest first). *)

val quorum_selector : t -> Qs_core.Quorum_select.t option
(** The embedded Algorithm-1 instance in [Quorum_selection] mode. *)

(** {2 Crash-recovery (amnesia)} *)

val timeouts : t -> Qs_fd.Timeout.t
(** The detector's adaptive timeout table — the durable part of the
    failure-detector state ({!Qs_fd.Timeout.export}/[import]). *)

val export_log_prefix : t -> Xmsg.entry list
(** The committed entries, slot-ordered — what the durable snapshot and the
    [StateResp] supplement carry. *)

val import_log_prefix : t -> Xmsg.entry list -> unit
(** Re-install committed entries (from the durable snapshot or a peer's
    supplement) and execute the contiguous prefix. Each entry's original
    leader signature is verified first, so corrupted or fabricated entries
    are silently skipped rather than executed. Idempotent. *)

val catch_up_view : t -> view:int -> unit
(** Fast-forward to [view] if it is ahead — the rejoiner's jump to where
    the cluster moved while it was down. No-op otherwise. *)

val amnesia_restart : t -> view:int -> unit
(** Crash losing all volatile state and restart at the durable [view]:
    empties the log (re-import the durable prefix afterwards), forgets
    proposals and detector suspicions (adapted timeouts survive — they are
    durable), and puts the embedded selector in its dormant post-amnesia
    state awaiting a {!Qs_core.Quorum_select.absorb}. *)

val fingerprint : t -> string
(** Canonical encoding of the replica's protocol-visible state (view, group,
    phase, log with votes and commit/execute marks, execution cursor,
    detections, detector suspect set and open-expectation count, embedded
    quorum selector) for model-checker state hashing. Timeout adaptation
    state and expectation deadlines are deliberately excluded — see
    DESIGN.md, "Model checking", for the soundness caveat. *)
