module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid
module QS = Qs_core.Quorum_select
module Timeout = Qs_fd.Timeout
module Store = Qs_recovery.Store
module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin

type t = {
  sim : Sim.t;
  net : Xmsg.t Network.t;
  replicas : Replica.t array;
  config : Replica.config;
  mutable next_rid : int;
  (* (client, rid) -> replicas that executed it *)
  executions : (int * int, Pid.t list ref) Hashtbl.t;
  submit_times : (int * int, Stime.t) Hashtbl.t;
  commit_times : (int * int, Stime.t) Hashtbl.t;
  omitted : (Pid.t * Pid.t, unit) Hashtbl.t;
  delayed : (Pid.t * Pid.t, Stime.t) Hashtbl.t;
  mutable stores : Store.t array option; (* set by attach_durability *)
}

(* ------------------------------------------------------------------ *)
(* The durable-state layout, rejoin payloads and amnesia restore live in
   {!Xdurable}, shared with the real-transport runtime node. The cluster
   only supplies the per-pid replica and store. *)

let persist t p =
  match t.stores with
  | None -> ()
  | Some stores -> Xdurable.persist t.replicas.(p) stores.(p)

let create ?(seed = 1L) ?(delay = Network.Fixed (Stime.of_ms 1)) ?(fifo = true) config =
  let sim = Sim.create ~seed () in
  let net = Network.create ~sim ~n:config.Replica.n ~delay ~fifo () in
  let auth = Qs_crypto.Auth.create config.Replica.n in
  let executions = Hashtbl.create 64 in
  let commit_times = Hashtbl.create 64 in
  let threshold = config.Replica.n - config.Replica.f in
  (* The on_execute closures outlive this function and need the cluster
     record that is only built below — forward reference. *)
  let self = ref None in
  let replicas =
    Array.init config.Replica.n (fun me ->
        Replica.create config ~me ~auth ~sim
          ~net_send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ~on_execute:(fun ~slot:_ request ->
            let key = (request.Xmsg.client, request.Xmsg.rid) in
            let cell =
              match Hashtbl.find_opt executions key with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.replace executions key c;
                c
            in
            if not (List.mem me !cell) then begin
              cell := me :: !cell;
              if List.length !cell = threshold && not (Hashtbl.mem commit_times key) then
                Hashtbl.replace commit_times key (Sim.now sim)
            end;
            match !self with Some t -> persist t me | None -> ())
          ())
  in
  Array.iteri
    (fun i replica ->
      Network.set_handler net i (fun ~src msg -> Replica.receive replica ~src msg))
    replicas;
  let t =
    {
      sim;
      net;
      replicas;
      config;
      next_rid = 0;
      executions;
      submit_times = Hashtbl.create 64;
      commit_times;
      omitted = Hashtbl.create 16;
      delayed = Hashtbl.create 16;
      stores = None;
    }
  in
  self := Some t;
  ignore
    (Network.add_filter net (fun ~now:_ ~src ~dst _ ->
         if Hashtbl.mem t.omitted (src, dst) then Network.Drop
         else
           match Hashtbl.find_opt t.delayed (src, dst) with
           | Some d -> Network.Delay d
           | None -> Network.Deliver)
      : Network.filter_id);
  t

let sim t = t.sim

let net t = t.net

let replica t i = t.replicas.(i)

let config t = t.config

let set_fault t i fault = Replica.set_fault t.replicas.(i) fault

let omit_link t ~src ~dst = Hashtbl.replace t.omitted (src, dst) ()

let delay_link t ~src ~dst ~by = Hashtbl.replace t.delayed (src, dst) by

let heal_link t ~src ~dst =
  Hashtbl.remove t.omitted (src, dst);
  Hashtbl.remove t.delayed (src, dst)

let heal_all t =
  Hashtbl.reset t.omitted;
  Hashtbl.reset t.delayed

let executed_by t request =
  match Hashtbl.find_opt t.executions (request.Xmsg.client, request.Xmsg.rid) with
  | Some cell -> List.sort compare !cell
  | None -> []

let is_globally_committed t request =
  List.length (executed_by t request)
  >= t.config.Replica.n - t.config.Replica.f

let submit t ?(client = 0) ?resubmit_every op =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let request = { Xmsg.client; rid; op } in
  Hashtbl.replace t.submit_times (client, rid) (Sim.now t.sim);
  let deliver () = Array.iter (fun r -> Replica.submit r request) t.replicas in
  Sim.schedule t.sim ~delay:0 deliver;
  (match resubmit_every with
   | None -> ()
   | Some period ->
     let rec again () =
       if not (is_globally_committed t request) then begin
         deliver ();
         Sim.schedule t.sim ~delay:period again
       end
     in
     Sim.schedule t.sim ~delay:period again);
  request

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let consistent t ~correct =
  let histories = List.map (fun p -> Replica.executed t.replicas.(p)) correct in
  List.for_all
    (fun h1 -> List.for_all (fun h2 -> is_prefix h1 h2 || is_prefix h2 h1) histories)
    histories

let total_view_changes t =
  Array.fold_left (fun acc r -> acc + Replica.view_changes r) 0 t.replicas

let max_view t = Array.fold_left (fun acc r -> max acc (Replica.view r)) 0 t.replicas

let message_count t = Network.sent_count t.net

let commit_latency t (request : Xmsg.request) =
  let key = (request.Xmsg.client, request.Xmsg.rid) in
  match (Hashtbl.find_opt t.submit_times key, Hashtbl.find_opt t.commit_times key) with
  | Some s, Some c -> Some (Stime.( - ) c s)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Durability and amnesia crashes *)

let attach_durability ?fsync_every t =
  match t.stores with
  | Some _ -> ()
  | None ->
    let stores =
      Array.init t.config.Replica.n (fun _ -> Store.create ?fsync_every ())
    in
    t.stores <- Some stores;
    (* Baseline snapshot: the pre-run state is durable by definition. *)
    Array.iteri
      (fun p store ->
        persist t p;
        Store.fsync store)
      stores

let store t p =
  match t.stores with
  | Some stores -> stores.(p)
  | None -> invalid_arg "Xcluster.store: durability not attached"

let collect_payload t p = Xdurable.collect_payload ~n:t.config.Replica.n t.replicas.(p)

let adopt_payload t p ~matrix ~epoch ~extra =
  Xdurable.adopt_payload t.replicas.(p) ~matrix ~epoch ~extra

let amnesia t p =
  let store = match t.stores with None -> None | Some stores -> Some stores.(p) in
  Xdurable.amnesia ~n:t.config.Replica.n t.replicas.(p) store
