module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Stime = Qs_sim.Stime
module Pid = Qs_core.Pid
module QS = Qs_core.Quorum_select
module Timeout = Qs_fd.Timeout
module Store = Qs_recovery.Store
module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin

type t = {
  sim : Sim.t;
  net : Xmsg.t Network.t;
  replicas : Replica.t array;
  config : Replica.config;
  mutable next_rid : int;
  (* (client, rid) -> replicas that executed it *)
  executions : (int * int, Pid.t list ref) Hashtbl.t;
  submit_times : (int * int, Stime.t) Hashtbl.t;
  commit_times : (int * int, Stime.t) Hashtbl.t;
  omitted : (Pid.t * Pid.t, unit) Hashtbl.t;
  delayed : (Pid.t * Pid.t, Stime.t) Hashtbl.t;
  mutable stores : Store.t array option; (* set by attach_durability *)
}

(* ------------------------------------------------------------------ *)
(* Durable-state codecs (Codec framing on top of the primitive W/R pair).
   The view is one varint; the log prefix is the committed entries with
   their original leader signatures, so import re-runs the provenance
   check. *)

let encode_view view =
  let w = Codec.W.create () in
  Codec.W.int w view;
  Codec.frame ~tag:"xvw" ~version:1 (Codec.W.contents w)

let decode_view s =
  let version, payload = Codec.unframe ~tag:"xvw" s in
  if version <> 1 then raise (Codec.Corrupt "xvw: unknown version");
  let r = Codec.R.of_string payload in
  let view = Codec.R.int r in
  if not (Codec.R.eof r) then raise (Codec.Corrupt "xvw: trailing bytes");
  view

let encode_entries entries =
  let w = Codec.W.create () in
  Codec.W.int w (List.length entries);
  List.iter
    (fun (e : Xmsg.entry) ->
      Codec.W.int w e.Xmsg.eview;
      Codec.W.int w e.Xmsg.eslot;
      Codec.W.int w e.Xmsg.erequest.Xmsg.client;
      Codec.W.int w e.Xmsg.erequest.Xmsg.rid;
      Codec.W.str w e.Xmsg.erequest.Xmsg.op;
      Codec.W.bool w e.Xmsg.ecommitted;
      Codec.W.str w e.Xmsg.epsig)
    entries;
  Codec.frame ~tag:"xlg" ~version:1 (Codec.W.contents w)

let decode_entries s =
  let version, payload = Codec.unframe ~tag:"xlg" s in
  if version <> 1 then raise (Codec.Corrupt "xlg: unknown version");
  let r = Codec.R.of_string payload in
  let count = Codec.R.int r in
  if count < 0 || count > 1_000_000 then raise (Codec.Corrupt "xlg: bad count");
  let entries = ref [] in
  for _ = 1 to count do
    let eview = Codec.R.int r in
    let eslot = Codec.R.int r in
    let client = Codec.R.int r in
    let rid = Codec.R.int r in
    let op = Codec.R.str r in
    let ecommitted = Codec.R.bool r in
    let epsig = Codec.R.str r in
    entries :=
      { Xmsg.eview; eslot; erequest = { Xmsg.client; rid; op }; ecommitted; epsig }
      :: !entries
  done;
  if not (Codec.R.eof r) then raise (Codec.Corrupt "xlg: trailing bytes");
  List.rev !entries

let empty_matrix_payload n = Codec.encode_matrix (Qs_core.Suspicion_matrix.create n)

(* Persist replica [p]'s durable state into its store. Executing a request
   is the durability point (a real SMR fsyncs its log before answering), so
   the batch ends with an explicit fsync; an [fsync_every] store merely adds
   finer-grained points within the batch. *)
let persist t p =
  match t.stores with
  | None -> ()
  | Some stores ->
    let r = t.replicas.(p) in
    let store = stores.(p) in
    Store.put store "view" (encode_view (Replica.view r));
    Store.put store "log" (encode_entries (Replica.export_log_prefix r));
    (match Replica.quorum_selector r with
     | Some qsel ->
       Store.put store "mtx" (Codec.encode_matrix (QS.matrix qsel));
       Store.put store "epo" (Codec.encode_epoch (QS.epoch qsel))
     | None -> ());
    Store.put store "tmo" (Codec.encode_timeouts (Timeout.export (Replica.timeouts r)));
    Store.fsync store

let create ?(seed = 1L) ?(delay = Network.Fixed (Stime.of_ms 1)) ?(fifo = true) config =
  let sim = Sim.create ~seed () in
  let net = Network.create ~sim ~n:config.Replica.n ~delay ~fifo () in
  let auth = Qs_crypto.Auth.create config.Replica.n in
  let executions = Hashtbl.create 64 in
  let commit_times = Hashtbl.create 64 in
  let threshold = config.Replica.n - config.Replica.f in
  (* The on_execute closures outlive this function and need the cluster
     record that is only built below — forward reference. *)
  let self = ref None in
  let replicas =
    Array.init config.Replica.n (fun me ->
        Replica.create config ~me ~auth ~sim
          ~net_send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ~on_execute:(fun ~slot:_ request ->
            let key = (request.Xmsg.client, request.Xmsg.rid) in
            let cell =
              match Hashtbl.find_opt executions key with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.replace executions key c;
                c
            in
            if not (List.mem me !cell) then begin
              cell := me :: !cell;
              if List.length !cell = threshold && not (Hashtbl.mem commit_times key) then
                Hashtbl.replace commit_times key (Sim.now sim)
            end;
            match !self with Some t -> persist t me | None -> ())
          ())
  in
  Array.iteri
    (fun i replica ->
      Network.set_handler net i (fun ~src msg -> Replica.receive replica ~src msg))
    replicas;
  let t =
    {
      sim;
      net;
      replicas;
      config;
      next_rid = 0;
      executions;
      submit_times = Hashtbl.create 64;
      commit_times;
      omitted = Hashtbl.create 16;
      delayed = Hashtbl.create 16;
      stores = None;
    }
  in
  self := Some t;
  Network.set_filter net (fun ~now:_ ~src ~dst _ ->
      if Hashtbl.mem t.omitted (src, dst) then Network.Drop
      else
        match Hashtbl.find_opt t.delayed (src, dst) with
        | Some d -> Network.Delay d
        | None -> Network.Deliver);
  t

let sim t = t.sim

let net t = t.net

let replica t i = t.replicas.(i)

let config t = t.config

let set_fault t i fault = Replica.set_fault t.replicas.(i) fault

let omit_link t ~src ~dst = Hashtbl.replace t.omitted (src, dst) ()

let delay_link t ~src ~dst ~by = Hashtbl.replace t.delayed (src, dst) by

let heal_link t ~src ~dst =
  Hashtbl.remove t.omitted (src, dst);
  Hashtbl.remove t.delayed (src, dst)

let heal_all t =
  Hashtbl.reset t.omitted;
  Hashtbl.reset t.delayed

let executed_by t request =
  match Hashtbl.find_opt t.executions (request.Xmsg.client, request.Xmsg.rid) with
  | Some cell -> List.sort compare !cell
  | None -> []

let is_globally_committed t request =
  List.length (executed_by t request)
  >= t.config.Replica.n - t.config.Replica.f

let submit t ?(client = 0) ?resubmit_every op =
  let rid = t.next_rid in
  t.next_rid <- t.next_rid + 1;
  let request = { Xmsg.client; rid; op } in
  Hashtbl.replace t.submit_times (client, rid) (Sim.now t.sim);
  let deliver () = Array.iter (fun r -> Replica.submit r request) t.replicas in
  Sim.schedule t.sim ~delay:0 deliver;
  (match resubmit_every with
   | None -> ()
   | Some period ->
     let rec again () =
       if not (is_globally_committed t request) then begin
         deliver ();
         Sim.schedule t.sim ~delay:period again
       end
     in
     Sim.schedule t.sim ~delay:period again);
  request

let run ?until ?max_events t = Sim.run ?until ?max_events t.sim

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let consistent t ~correct =
  let histories = List.map (fun p -> Replica.executed t.replicas.(p)) correct in
  List.for_all
    (fun h1 -> List.for_all (fun h2 -> is_prefix h1 h2 || is_prefix h2 h1) histories)
    histories

let total_view_changes t =
  Array.fold_left (fun acc r -> acc + Replica.view_changes r) 0 t.replicas

let max_view t = Array.fold_left (fun acc r -> max acc (Replica.view r)) 0 t.replicas

let message_count t = Network.sent_count t.net

let commit_latency t (request : Xmsg.request) =
  let key = (request.Xmsg.client, request.Xmsg.rid) in
  match (Hashtbl.find_opt t.submit_times key, Hashtbl.find_opt t.commit_times key) with
  | Some s, Some c -> Some (Stime.( - ) c s)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Durability and amnesia crashes *)

let attach_durability ?fsync_every t =
  match t.stores with
  | Some _ -> ()
  | None ->
    let stores =
      Array.init t.config.Replica.n (fun _ -> Store.create ?fsync_every ())
    in
    t.stores <- Some stores;
    (* Baseline snapshot: the pre-run state is durable by definition. *)
    Array.iteri
      (fun p store ->
        persist t p;
        Store.fsync store)
      stores

let store t p =
  match t.stores with
  | Some stores -> stores.(p)
  | None -> invalid_arg "Xcluster.store: durability not attached"

(* A decode failure on durable state means the write never made it past an
   fsync point in recognisable shape — recover as if the key were absent
   (the rejoin protocol supplies the rest). *)
let durable_decode store key decode ~default =
  match Store.durable_get store key with
  | None -> default
  | Some s -> ( match decode s with v -> v | exception Codec.Corrupt _ -> default)

let collect_payload t p =
  let r = t.replicas.(p) in
  let matrix, epoch =
    match Replica.quorum_selector r with
    | Some qsel -> (Codec.encode_matrix (QS.matrix qsel), QS.epoch qsel)
    | None -> (empty_matrix_payload t.config.Replica.n, 1)
  in
  let w = Codec.W.create () in
  Codec.W.int w (Replica.view r);
  Codec.W.str w (encode_entries (Replica.export_log_prefix r));
  let extra = Codec.frame ~tag:"xsu" ~version:1 (Codec.W.contents w) in
  { Rejoin.matrix; epoch; extra }

let adopt_payload t p ~matrix ~epoch ~extra =
  let r = t.replicas.(p) in
  (* Log and view first: absorb re-evaluates the selection and may itself
     move the view, and catch_up_view takes the max anyway. *)
  (match Codec.unframe ~tag:"xsu" extra with
   | exception Codec.Corrupt _ -> () (* corrupt supplement: matrix merge still stands *)
   | version, payload ->
     if version = 1 then begin
       match
         let rd = Codec.R.of_string payload in
         let view = Codec.R.int rd in
         let entries = decode_entries (Codec.R.str rd) in
         if not (Codec.R.eof rd) then raise (Codec.Corrupt "xsu: trailing bytes");
         (view, entries)
       with
       | exception Codec.Corrupt _ -> ()
       | view, entries ->
         Replica.import_log_prefix r entries;
         (match Replica.quorum_selector r with
          | Some _ -> () (* quorum-selection mode moves views via the selector *)
          | None -> Replica.catch_up_view r ~view)
     end);
  match Replica.quorum_selector r with
  | Some qsel -> QS.absorb qsel ~matrix ~epoch
  | None -> ()

let amnesia t p =
  let r = t.replicas.(p) in
  match t.stores with
  | None ->
    (* No durability attached: the crash loses everything. *)
    Replica.amnesia_restart r ~view:0;
    {
      Rejoin.matrix = empty_matrix_payload t.config.Replica.n;
      epoch = 1;
      extra = "";
    }
  | Some stores ->
    let store = stores.(p) in
    Store.crash store;
    let view = durable_decode store "view" decode_view ~default:0 in
    Replica.amnesia_restart r ~view;
    (match Store.durable_get store "tmo" with
     | None -> ()
     | Some s -> (
       match Codec.decode_timeouts s with
       | exception Codec.Corrupt _ -> ()
       | arr -> (
         match Timeout.import (Replica.timeouts r) arr with
         | () -> ()
         | exception Invalid_argument _ -> ())));
    Replica.import_log_prefix r
      (durable_decode store "log" decode_entries ~default:[]);
    {
      Rejoin.matrix =
        durable_decode store "mtx"
          (fun s ->
            ignore (Codec.decode_matrix s);
            s)
          ~default:(empty_matrix_payload t.config.Replica.n);
      epoch = durable_decode store "epo" Codec.decode_epoch ~default:1;
      extra = "";
    }
