(** An XPaxos cluster in the discrete-event simulator.

    Wires [n] replicas over an eventually-synchronous {!Qs_sim.Network},
    plays a simulated client (requests are handed to every replica, as an
    XPaxos client broadcasts after a timeout), and offers per-link fault
    injection on top of replica-level faults. *)

type t

val create :
  ?seed:int64 ->
  ?delay:Qs_sim.Network.delay_model ->
  ?fifo:bool ->
  Replica.config ->
  t
(** Default delay: [Fixed 1ms]. Default [fifo] true (XPaxos assumes
    point-to-point FIFO channels in practice). *)

val sim : t -> Qs_sim.Sim.t

val net : t -> Xmsg.t Qs_sim.Network.t

val replica : t -> Qs_core.Pid.t -> Replica.t

val config : t -> Replica.config

val set_fault : t -> Qs_core.Pid.t -> Replica.fault -> unit

val omit_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> unit
(** Drop every message on one direction of a link (an omission failure the
    sender commits on an individual link). *)

val delay_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> by:Qs_sim.Stime.t -> unit
(** Add fixed extra latency on a link (timing failure). *)

val heal_link : t -> src:Qs_core.Pid.t -> dst:Qs_core.Pid.t -> unit

val heal_all : t -> unit

val submit : t -> ?client:int -> ?resubmit_every:Qs_sim.Stime.t -> string -> Xmsg.request
(** Schedule a client request (handed to every replica at the current
    simulation time; redelivered every [resubmit_every] until [n − f]
    replicas executed it, when given). Returns the request for querying. *)

val run : ?until:Qs_sim.Stime.t -> ?max_events:int -> t -> unit

val executed_by : t -> Xmsg.request -> Qs_core.Pid.t list
(** Replicas that executed the request. *)

val is_globally_committed : t -> Xmsg.request -> bool
(** Executed by at least [n − f] replicas (the XFT commit condition). *)

val consistent : t -> correct:Qs_core.Pid.t list -> bool
(** Pairwise prefix-consistency of the given replicas' executed histories:
    the safety invariant of state machine replication. *)

val total_view_changes : t -> int
(** Sum over replicas — the E5 metric is usually [max_view] instead. *)

val max_view : t -> int

val message_count : t -> int
(** Inter-replica messages sent (excludes self-deliveries). *)

val commit_latency : t -> Xmsg.request -> Qs_sim.Stime.t option
(** Time from submission until [n − f] replicas executed the request. *)

(** {2 Durability and amnesia crashes}

    With {!attach_durability}, every replica persists its durable state —
    view, committed log prefix, selection matrix and epoch, adapted
    timeouts — into an in-simulation {!Qs_recovery.Store} at each execute,
    under the store's fsync-point model. {!amnesia} then crashes one
    replica: volatile state is wiped, the durable snapshot is re-imported,
    and the caller feeds the returned payload plus the peers' [StateResp]s
    through a {!Qs_recovery.Rejoin} engine wired with {!collect_payload} /
    {!adopt_payload}. *)

val attach_durability : ?fsync_every:int -> t -> unit
(** Create one store per replica (see {!Qs_recovery.Store.create} for
    [fsync_every]) and persist-and-fsync the current state as the baseline
    snapshot. Idempotent. *)

val store : t -> Qs_core.Pid.t -> Qs_recovery.Store.t
(** [Invalid_argument] unless {!attach_durability} was called. *)

val collect_payload : t -> Qs_core.Pid.t -> Qs_recovery.Rejoin.payload
(** This replica's state as a rejoin payload: encoded matrix and epoch
    (trivial in enumeration mode) plus a supplement carrying the view and
    the committed log prefix with original prepare signatures. *)

val adopt_payload :
  t ->
  Qs_core.Pid.t ->
  matrix:Qs_core.Suspicion_matrix.t ->
  epoch:int ->
  extra:string ->
  unit
(** The rejoiner's CRDT join: import the supplement's committed entries
    (provenance-checked), catch up the view (enumeration mode; selection
    mode moves views through the selector), and absorb matrix and epoch
    into the embedded selector. A corrupt supplement is skipped — the
    matrix merge still applies. *)

val amnesia : t -> Qs_core.Pid.t -> Qs_recovery.Rejoin.payload
(** Amnesia-crash one replica: drop its store's unflushed writes, wipe the
    volatile state ({!Replica.amnesia_restart}), re-import the durable
    snapshot (view, timeouts, log prefix) and return the durable selection
    state as a payload — feed it to the replica's rejoin engine as a self
    [State_push] {e after} [Rejoin.start], so it merges at completion with
    the peers' responses. Without {!attach_durability} the crash loses
    everything and the payload is trivial. *)
