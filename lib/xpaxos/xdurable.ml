module QS = Qs_core.Quorum_select
module Timeout = Qs_fd.Timeout
module Store = Qs_recovery.Store
module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin

(* Durable-state codecs (Codec framing on top of the primitive W/R pair).
   The view is one varint; the log prefix is the committed entries with
   their original leader signatures, so import re-runs the provenance
   check. Factored out of Xcluster so the real-transport runtime node and
   the simulated cluster persist, collect and adopt byte-identical state. *)

let encode_view view =
  let w = Codec.W.create () in
  Codec.W.int w view;
  Codec.frame ~tag:"xvw" ~version:1 (Codec.W.contents w)

let decode_view s =
  let version, payload = Codec.unframe ~tag:"xvw" s in
  if version <> 1 then raise (Codec.Corrupt "xvw: unknown version");
  let r = Codec.R.of_string payload in
  let view = Codec.R.int r in
  if not (Codec.R.eof r) then raise (Codec.Corrupt "xvw: trailing bytes");
  view

let encode_entries entries =
  let w = Codec.W.create () in
  Codec.W.int w (List.length entries);
  List.iter
    (fun (e : Xmsg.entry) ->
      Codec.W.int w e.Xmsg.eview;
      Codec.W.int w e.Xmsg.eslot;
      Codec.W.int w e.Xmsg.erequest.Xmsg.client;
      Codec.W.int w e.Xmsg.erequest.Xmsg.rid;
      Codec.W.str w e.Xmsg.erequest.Xmsg.op;
      Codec.W.bool w e.Xmsg.ecommitted;
      Codec.W.str w e.Xmsg.epsig)
    entries;
  Codec.frame ~tag:"xlg" ~version:1 (Codec.W.contents w)

let decode_entries s =
  let version, payload = Codec.unframe ~tag:"xlg" s in
  if version <> 1 then raise (Codec.Corrupt "xlg: unknown version");
  let r = Codec.R.of_string payload in
  let count = Codec.R.int r in
  if count < 0 || count > 1_000_000 then raise (Codec.Corrupt "xlg: bad count");
  let entries = ref [] in
  for _ = 1 to count do
    let eview = Codec.R.int r in
    let eslot = Codec.R.int r in
    let client = Codec.R.int r in
    let rid = Codec.R.int r in
    let op = Codec.R.str r in
    let ecommitted = Codec.R.bool r in
    let epsig = Codec.R.str r in
    entries :=
      { Xmsg.eview; eslot; erequest = { Xmsg.client; rid; op }; ecommitted; epsig }
      :: !entries
  done;
  if not (Codec.R.eof r) then raise (Codec.Corrupt "xlg: trailing bytes");
  List.rev !entries

let empty_matrix_payload n = Codec.encode_matrix (Qs_core.Suspicion_matrix.create n)

(* Persist a replica's durable state into its store. Executing a request is
   the durability point (a real SMR fsyncs its log before answering), so the
   batch ends with an explicit fsync; an [fsync_every] store merely adds
   finer-grained points within the batch. *)
let persist r store =
  Store.put store "view" (encode_view (Replica.view r));
  Store.put store "log" (encode_entries (Replica.export_log_prefix r));
  (match Replica.quorum_selector r with
   | Some qsel ->
     Store.put store "mtx" (Codec.encode_matrix (QS.matrix qsel));
     Store.put store "epo" (Codec.encode_epoch (QS.epoch qsel))
   | None -> ());
  Store.put store "tmo" (Codec.encode_timeouts (Timeout.export (Replica.timeouts r)));
  Store.fsync store

(* A decode failure on durable state means the write never made it past an
   fsync point in recognisable shape — recover as if the key were absent
   (the rejoin protocol supplies the rest). *)
let durable_decode store key decode ~default =
  match Store.durable_get store key with
  | None -> default
  | Some s -> ( match decode s with v -> v | exception Codec.Corrupt _ -> default)

let collect_payload ~n r =
  let matrix, epoch =
    match Replica.quorum_selector r with
    | Some qsel -> (Codec.encode_matrix (QS.matrix qsel), QS.epoch qsel)
    | None -> (empty_matrix_payload n, 1)
  in
  let w = Codec.W.create () in
  Codec.W.int w (Replica.view r);
  Codec.W.str w (encode_entries (Replica.export_log_prefix r));
  let extra = Codec.frame ~tag:"xsu" ~version:1 (Codec.W.contents w) in
  { Rejoin.matrix; epoch; extra }

let adopt_payload r ~matrix ~epoch ~extra =
  (* Log and view first: absorb re-evaluates the selection and may itself
     move the view, and catch_up_view takes the max anyway. *)
  (match Codec.unframe ~tag:"xsu" extra with
   | exception Codec.Corrupt _ -> () (* corrupt supplement: matrix merge still stands *)
   | version, payload ->
     if version = 1 then begin
       match
         let rd = Codec.R.of_string payload in
         let view = Codec.R.int rd in
         let entries = decode_entries (Codec.R.str rd) in
         if not (Codec.R.eof rd) then raise (Codec.Corrupt "xsu: trailing bytes");
         (view, entries)
       with
       | exception Codec.Corrupt _ -> ()
       | view, entries ->
         Replica.import_log_prefix r entries;
         (match Replica.quorum_selector r with
          | Some _ -> () (* quorum-selection mode moves views via the selector *)
          | None -> Replica.catch_up_view r ~view)
     end);
  match Replica.quorum_selector r with
  | Some qsel -> QS.absorb qsel ~matrix ~epoch
  | None -> ()

let amnesia ~n r store =
  match store with
  | None ->
    (* No durability attached: the crash loses everything. *)
    Replica.amnesia_restart r ~view:0;
    { Rejoin.matrix = empty_matrix_payload n; epoch = 1; extra = "" }
  | Some store ->
    Store.crash store;
    let view = durable_decode store "view" decode_view ~default:0 in
    Replica.amnesia_restart r ~view;
    (match Store.durable_get store "tmo" with
     | None -> ()
     | Some s -> (
       match Codec.decode_timeouts s with
       | exception Codec.Corrupt _ -> ()
       | arr -> (
         match Timeout.import (Replica.timeouts r) arr with
         | () -> ()
         | exception Invalid_argument _ -> ())));
    Replica.import_log_prefix r (durable_decode store "log" decode_entries ~default:[]);
    {
      Rejoin.matrix =
        durable_decode store "mtx"
          (fun s ->
            ignore (Codec.decode_matrix s);
            s)
          ~default:(empty_matrix_payload n);
      epoch = durable_decode store "epo" Codec.decode_epoch ~default:1;
      extra = "";
    }
