(** Durable XPaxos replica state: codecs, persistence, rejoin payloads.

    Factored out of {!Xcluster} so the same logic drives both the simulated
    cluster and the real-transport runtime node ({!Qs_runtime}): the durable
    snapshot layout ([view]/[log]/[mtx]/[epo]/[tmo] keys, Codec-framed and
    checksummed), the rejoin payload with its signed log-prefix supplement,
    and the amnesia restart that re-imports the last fsync point. *)

val encode_view : int -> string

val decode_view : string -> int
(** Raises {!Qs_recovery.Codec.Corrupt}. *)

val encode_entries : Xmsg.entry list -> string

val decode_entries : string -> Xmsg.entry list
(** Raises {!Qs_recovery.Codec.Corrupt}. *)

val empty_matrix_payload : int -> string
(** Encoded empty [n * n] suspicion matrix. *)

val persist : Replica.t -> Qs_recovery.Store.t -> unit
(** Write the replica's durable state (view, committed log prefix, selector
    matrix and epoch, adapted timeouts) and fsync — the per-execute
    durability point. *)

val collect_payload : n:int -> Replica.t -> Qs_recovery.Rejoin.payload
(** The replica's state as a rejoin payload: encoded matrix and epoch
    (trivial in enumeration mode) plus a supplement carrying the view and
    the committed log prefix with original prepare signatures. *)

val adopt_payload :
  Replica.t ->
  matrix:Qs_core.Suspicion_matrix.t ->
  epoch:int ->
  extra:string ->
  unit
(** The rejoiner's CRDT join: import the supplement's committed entries
    (provenance-checked), catch up the view, and absorb matrix and epoch
    into the embedded selector. A corrupt supplement is skipped — the
    matrix merge still applies. *)

val amnesia : n:int -> Replica.t -> Qs_recovery.Store.t option -> Qs_recovery.Rejoin.payload
(** Amnesia-crash one replica: drop the store's unflushed writes, wipe the
    volatile state ({!Replica.amnesia_restart}), re-import the durable
    snapshot (view, timeouts, log prefix) and return the durable selection
    state as a payload — feed it to the replica's rejoin engine as a self
    [State_push] after [Rejoin.start]. With no store the crash loses
    everything and the payload is trivial. *)
