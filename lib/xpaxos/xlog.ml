type entry = {
  slot : int;
  mutable sp : Xmsg.signed_prepare option;
  mutable votes : Qs_core.Pid.t list;
  mutable committed : bool;
  mutable executed : bool;
}

type t = { slots : (int, entry) Hashtbl.t; mutable max_slot : int }

let create () = { slots = Hashtbl.create 64; max_slot = -1 }

let entry t slot =
  match Hashtbl.find_opt t.slots slot with
  | Some e -> e
  | None ->
    let e = { slot; sp = None; votes = []; committed = false; executed = false } in
    Hashtbl.replace t.slots slot e;
    if slot > t.max_slot then t.max_slot <- slot;
    e

let find t slot = Hashtbl.find_opt t.slots slot

let max_slot t = t.max_slot

let next_slot t = t.max_slot + 1

let record_vote e voter = if not (List.mem voter e.votes) then e.votes <- voter :: e.votes

let executed_prefix t =
  let rec loop slot acc =
    match Hashtbl.find_opt t.slots slot with
    | Some ({ executed = true; sp = Some sp; _ } : entry) ->
      loop (slot + 1) (sp.Xmsg.prepare.Xmsg.request :: acc)
    | _ -> List.rev acc
  in
  loop 0 []

let committed_count t =
  Hashtbl.fold (fun _ e acc -> if e.committed then acc + 1 else acc) t.slots 0

let to_entries t =
  let all =
    Hashtbl.fold
      (fun slot e acc ->
        match e.sp with
        | None -> acc
        | Some sp ->
          {
            Xmsg.eview = sp.Xmsg.prepare.Xmsg.view;
            eslot = slot;
            erequest = sp.Xmsg.prepare.Xmsg.request;
            ecommitted = e.committed;
            epsig = sp.Xmsg.psig;
          }
          :: acc)
      t.slots []
  in
  List.sort (fun a b -> compare a.Xmsg.eslot b.Xmsg.eslot) all

let clear t =
  Hashtbl.reset t.slots;
  t.max_slot <- -1

let adopt t entry_msg ~view:_ ~sp =
  let e = entry t entry_msg.Xmsg.eslot in
  e.sp <- Some sp;
  e.votes <- [];
  if entry_msg.Xmsg.ecommitted then e.committed <- true
