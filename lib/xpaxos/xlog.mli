(** Replica log: one entry per slot, committed prefix executed in order.

    A slot commits when the replica holds a valid PREPARE and matching
    COMMITs from {e every} other member of the synchronous group (paper,
    Section V-A, step 3) — the PREPARE counts as the leader's vote. *)

type entry = {
  slot : int;
  mutable sp : Xmsg.signed_prepare option;  (** adopted prepare *)
  mutable votes : Qs_core.Pid.t list;  (** COMMIT senders (matching hash) *)
  mutable committed : bool;
  mutable executed : bool;
}

type t

val create : unit -> t

val entry : t -> int -> entry
(** Get-or-create the entry for a slot. *)

val find : t -> int -> entry option

val max_slot : t -> int
(** Highest touched slot; -1 when empty. *)

val next_slot : t -> int
(** [max_slot + 1] — the leader's allocation counter. *)

val record_vote : entry -> Qs_core.Pid.t -> unit
(** Idempotent. *)

val executed_prefix : t -> Xmsg.request list
(** Requests of executed slots 0,1,2,… in order (stops at the first gap). *)

val committed_count : t -> int

val to_entries : t -> Xmsg.entry list
(** Snapshot for VIEW-CHANGE messages: every slot with an adopted prepare. *)

val adopt : t -> Xmsg.entry -> view:int -> sp:Xmsg.signed_prepare -> unit
(** Install an entry from a NEW-VIEW: overwrite the slot's prepare with the
    re-signed one, preserving committed status if already committed. *)

val clear : t -> unit
(** Forget every slot — the volatile part of an amnesia crash. The durable
    committed prefix is re-imported separately
    ({!Replica.import_log_prefix}). *)
