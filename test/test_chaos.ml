(* Chaos tests, now on the shared fault vocabulary of [Qs_faults]: schedule
   generation and model classification, injector semantics on a raw network,
   the campaign runner's determinism and shrinking, and randomized in-model
   campaigns across every protocol stack with the online invariant monitor
   attached. *)

module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Network = Qs_sim.Network
module Prng = Qs_stdx.Prng
module Fault = Qs_faults.Fault
module Injector = Qs_faults.Injector
module Monitor = Qs_faults.Monitor
module Campaign = Qs_faults.Campaign
module Chaos = Qs_harness.Chaos

let ms = Stime.of_ms

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Fault DSL: blame and model classification *)

let test_classify () =
  let n = 7 and f = 2 in
  let in_model s =
    match Fault.classify ~n ~f s with Fault.In_model _ -> true | _ -> false
  in
  check_bool "f crashes fit the budget" true
    (in_model [ Fault.at (Fault.Crash 0); Fault.at (Fault.Crash 1) ]);
  check_bool "f+1 crashes exceed it" false
    (in_model
       [ Fault.at (Fault.Crash 0); Fault.at (Fault.Crash 1); Fault.at (Fault.Crash 2) ]);
  check_bool "link faults blame the src only" true
    (in_model
       [
         Fault.at (Fault.Omit { src = 3; dst = 0 });
         Fault.at (Fault.Delay { src = 3; dst = 1; by = ms 50 });
         Fault.at (Fault.Duplicate { src = 5; dst = 2; copies = 2 });
       ]);
  check_bool "small partition side is blamed" true
    (in_model [ Fault.at (Fault.Partition [ 0; 1 ]) ]);
  check_bool "large partition side exceeds the budget" false
    (in_model [ Fault.at (Fault.Partition [ 0; 1; 2 ]) ]);
  Alcotest.(check (list int))
    "blame is the union, deduped" [ 1; 3 ]
    (Fault.blamed ~n
       [
         Fault.at (Fault.Crash 3);
         Fault.at (Fault.Omit { src = 3; dst = 0 });
         Fault.at (Fault.Omit { src = 1; dst = 3 });
       ])

let test_validate () =
  let bad schedule =
    match Fault.validate ~n:5 schedule with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  check_bool "process out of range" true (bad [ Fault.at (Fault.Crash 9) ]);
  check_bool "self link" true (bad [ Fault.at (Fault.Omit { src = 2; dst = 2 }) ]);
  check_bool "stop before start" true
    (bad [ Fault.at ~start:(ms 100) ~stop:(ms 50) (Fault.Crash 0) ]);
  check_bool "well-formed accepted" false
    (bad [ Fault.at ~start:(ms 50) ~stop:(ms 100) (Fault.Crash 0) ])

let prop_gen_respects_budget =
  QCheck.Test.make ~name:"gen stays in-model; gen_wild does not" ~count:200
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let n = 7 and f = 2 in
      let profile = Fault.default_profile ~horizon:(ms 5_000) in
      let rng = Prng.of_int seed in
      let s = Fault.gen rng ~n ~f ~profile () in
      Fault.validate ~n s;
      let rng = Prng.of_int seed in
      let w = Fault.gen_wild rng ~n ~f ~profile () in
      Fault.validate ~n w;
      (match Fault.classify ~n ~f s with Fault.In_model _ -> true | _ -> false)
      && match Fault.classify ~n ~f w with Fault.Out_of_model _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Injector: phases compile onto the filter chain at their virtual times *)

let test_injector_windows () =
  let sim = Sim.create () in
  let net = Network.create ~sim ~n:3 ~delay:(Network.Fixed 1) () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
  ignore
    (Injector.install ~net
       [ Fault.at ~start:50 ~stop:100 (Fault.Omit { src = 0; dst = 1 }) ]);
  List.iter
    (fun t -> Sim.schedule_at sim ~at:t (fun () -> Network.send net ~src:0 ~dst:1 t))
    [ 20; 70; 120 ];
  Sim.run sim;
  Alcotest.(check (list int)) "only the in-window send is dropped" [ 20; 120 ]
    (List.sort compare !got);
  check_int "filter chain drained after stop" 0 (Network.filter_count net)

let test_injector_crash_without_mute_hook () =
  (* No [set_mute] hook: a crash degrades to dropping everything the
     process sends. *)
  let sim = Sim.create () in
  let net = Network.create ~sim ~n:3 ~delay:(Network.Fixed 1) () in
  let got = ref 0 in
  Network.set_handler net 2 (fun ~src:_ _ -> incr got);
  ignore (Injector.install ~net [ Fault.at ~start:10 (Fault.Crash 0) ]);
  Sim.schedule_at sim ~at:20 (fun () -> Network.send net ~src:0 ~dst:2 "dead");
  Sim.schedule_at sim ~at:20 (fun () -> Network.send net ~src:1 ~dst:2 "alive");
  Sim.run sim;
  check_int "only the live process gets through" 1 !got

let test_injector_partition () =
  let sim = Sim.create () in
  let net = Network.create ~sim ~n:4 ~delay:(Network.Fixed 1) () in
  let delivered = ref [] in
  for p = 0 to 3 do
    Network.set_handler net p (fun ~src m -> delivered := (src, m) :: !delivered)
  done;
  ignore (Injector.install ~net [ Fault.at (Fault.Partition [ 0; 1 ]) ]);
  Sim.schedule_at sim ~at:10 (fun () ->
      Network.send net ~src:0 ~dst:1 1;  (* same side: delivered *)
      Network.send net ~src:0 ~dst:2 2;  (* across: dropped *)
      Network.send net ~src:3 ~dst:1 3;  (* across: dropped *)
      Network.send net ~src:2 ~dst:3 4 (* same side: delivered *));
  Sim.run sim;
  Alcotest.(check (list int))
    "only same-side messages cross" [ 1; 4 ]
    (List.sort compare (List.map snd !delivered))

(* ------------------------------------------------------------------ *)
(* Campaign: determinism and shrinking *)

let test_campaign_deterministic () =
  let params = { (Chaos.default_params Chaos.Xpaxos_qs) with Chaos.horizon = ms 3_000 } in
  let go () = Chaos.campaign Chaos.Xpaxos_qs ~params ~runs:3 ~seed:4242 () in
  let a = go () and b = go () in
  check_bool "same seed, same schedules" true
    (List.map (fun r -> r.Campaign.schedule) a.Campaign.runs
    = List.map (fun r -> r.Campaign.schedule) b.Campaign.runs);
  check_bool "same seed, same outcomes" true
    (List.map (fun r -> r.Campaign.outcome) a.Campaign.runs
    = List.map (fun r -> r.Campaign.outcome) b.Campaign.runs)

let test_campaign_shrinks_to_marker () =
  (* Synthetic executor failing iff the schedule crashes p1: the campaign
     must stop at the first failure and shrink it to just that phase. *)
  let gen _rng =
    [ Fault.at (Fault.Crash 0); Fault.at (Fault.Crash 1); Fault.at (Fault.Crash 2) ]
  in
  let execute ~seed:_ ~model:_ schedule =
    let bad = List.exists (fun ph -> ph.Fault.what = Fault.Crash 1) schedule in
    {
      Campaign.violations =
        (if bad then [ { Monitor.at = 0.; check = "marker"; detail = "crash p1" } ] else []);
      liveness = [];
      committed = 0;
      submitted = 0;
      checks = 1;
      proofs = 0;
      forgeries = 0;
      reconfigs = 0;
      isect_pairs = 0;
      isect_min_overlap = None;
    }
  in
  let report =
    Campaign.run ~seed:7 ~runs:5 ~gen ~classify:(Fault.classify ~n:5 ~f:3) ~execute ()
  in
  check_bool "campaign failed" false (Campaign.ok report);
  check_int "stopped at the first failure" 1 (List.length report.Campaign.runs);
  (match report.Campaign.minimal with
   | None -> Alcotest.fail "no minimal reproduction"
   | Some m ->
     check_int "shrunk to a single phase" 1 (List.length m.Campaign.schedule);
     check_bool "and it is the marker" true
       (List.exists (fun ph -> ph.Fault.what = Fault.Crash 1) m.Campaign.schedule));
  check_bool "shrinking re-executed variants" true (report.Campaign.shrink_steps > 0)

(* Satellite: the parallel campaign engine is report-identical to the
   sequential one — schedules pre-drawn in index order, lowest failing
   index wins, run list truncated exactly where the sequential engine
   stops, shrink replayed on the calling domain. First on a synthetic
   executor with a failure in the middle of the run list... *)
let test_campaign_jobs_identical_synthetic () =
  let gen rng = [ Fault.at (Fault.Crash (Prng.int rng 4)) ] in
  let execute ~seed:_ ~model:_ schedule =
    let bad = List.exists (fun ph -> ph.Fault.what = Fault.Crash 1) schedule in
    {
      Campaign.violations =
        (if bad then [ { Monitor.at = 0.; check = "marker"; detail = "crash p1" } ]
         else []);
      liveness = [];
      committed = 0;
      submitted = 0;
      checks = 1;
      proofs = 0;
      forgeries = 0;
      reconfigs = 0;
      isect_pairs = 0;
      isect_min_overlap = None;
    }
  in
  let go jobs =
    Campaign.run ~jobs ~seed:7 ~runs:12 ~gen
      ~classify:(Fault.classify ~n:5 ~f:3) ~execute ()
  in
  let a = go 1 and b = go 3 in
  check_bool "a campaign that fails mid-list" false (Campaign.ok a);
  check_bool "same run count" true
    (List.length a.Campaign.runs = List.length b.Campaign.runs);
  Alcotest.(check string)
    "byte-identical report"
    (Qs_obs.Json.render (Campaign.to_json a))
    (Qs_obs.Json.render (Campaign.to_json b))

(* ... then on a real stack (all runs pass, so every run executes on both
   sides and the whole report must still agree byte-for-byte). *)
let test_campaign_jobs_identical_stack () =
  let params =
    { (Chaos.default_params Chaos.Xpaxos_qs) with Chaos.horizon = ms 3_000 }
  in
  let go jobs =
    Chaos.campaign Chaos.Xpaxos_qs ~params ~runs:3 ~jobs ~seed:4242 ()
  in
  let a = go 1 and b = go 2 in
  Alcotest.(check string)
    "byte-identical report"
    (Qs_obs.Json.render (Campaign.to_json a))
    (Qs_obs.Json.render (Campaign.to_json b))

(* ------------------------------------------------------------------ *)
(* Protocol stacks under generated in-model schedules, monitored online *)

let exec_ok stack seed =
  let params = { (Chaos.default_params stack) with Chaos.horizon = ms 4_000 } in
  let rng = Prng.of_int seed in
  let profile = Fault.default_profile ~horizon:params.Chaos.horizon in
  let schedule = Fault.gen rng ~n:params.Chaos.n ~f:params.Chaos.f ~profile () in
  let model = Fault.classify ~n:params.Chaos.n ~f:params.Chaos.f schedule in
  let o = Chaos.execute stack ~params ~seed ~model schedule in
  if Campaign.failed o then begin
    List.iter
      (fun v -> Printf.eprintf "violation: %s\n%!" (Monitor.violation_to_string v))
      o.Campaign.violations;
    List.iter (fun l -> Printf.eprintf "liveness: %s\n%!" l) o.Campaign.liveness
  end;
  (not (Campaign.failed o)) && o.Campaign.checks > 0

let stack_prop stack count =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: monitored in-model chaos" (Chaos.name stack))
    ~count
    QCheck.(int_range 1 100_000)
    (exec_ok stack)

(* ------------------------------------------------------------------ *)
(* Heartbeat stack: agreement whatever the (bounded) fault mix, with the
   plan drawn from the same schedule generator. *)

let prop_heartbeat_chaos =
  QCheck.Test.make ~name:"heartbeat stack: agreement under chaos" ~count:15
    QCheck.(int_range 1 100000)
    (fun seed ->
      let n = 7 and f = 2 in
      (* The heartbeat harness injects permanent crashes and omissions
         directly, so draw a schedule without timing faults. *)
      let profile =
        { (Fault.default_profile ~horizon:(ms 6_000)) with
          Fault.p_delay = 0.;
          p_duplicate = 0.;
          p_recover = 0.;
        }
      in
      let schedule = Fault.gen (Prng.of_int seed) ~n ~f ~profile () in
      let t =
        Qs_harness.Heartbeat.create ~seed:(Int64.of_int seed)
          {
            Qs_harness.Heartbeat.n;
            f;
            heartbeat_period = ms 50;
            initial_timeout = ms 120;
            timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
          }
      in
      List.iter
        (fun ph ->
          let from = Stdlib.max ph.Fault.start (ms 300) in
          match ph.Fault.what with
          | Fault.Crash p -> Qs_harness.Heartbeat.crash t p from
          | Fault.Omit { src; dst } -> Qs_harness.Heartbeat.omit_link t ~src ~dst ~from
          | _ -> ())
        schedule;
      Qs_harness.Heartbeat.run ~until:(ms 6000) t;
      let blamed = Fault.blamed ~n schedule in
      let correct = List.filter (fun p -> not (List.mem p blamed)) (List.init n Fun.id) in
      Qs_harness.Heartbeat.agreed_quorum t ~correct <> None
      && Qs_harness.Heartbeat.matrices_agree t ~correct)

(* One deterministic smoke case per stack so failures reproduce trivially. *)
let test_known_seed_all_stacks () =
  List.iter
    (fun stack ->
      check_bool (Chaos.name stack ^ " @ seed 4242") true (exec_ok stack 4242))
    Chaos.all

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_gen_respects_budget;
      stack_prop Chaos.Xpaxos_enum 15;
      stack_prop Chaos.Xpaxos_qs 15;
      stack_prop Chaos.Pbft 10;
      stack_prop Chaos.Minbft 10;
      stack_prop Chaos.Chain 10;
      stack_prop Chaos.Star 10;
      prop_heartbeat_chaos;
    ]

let () =
  Alcotest.run "chaos"
    [
      ( "faults",
        [
          Alcotest.test_case "classification" `Quick test_classify;
          Alcotest.test_case "validation" `Quick test_validate;
        ] );
      ( "injector",
        [
          Alcotest.test_case "phase windows" `Quick test_injector_windows;
          Alcotest.test_case "crash without mute hook" `Quick
            test_injector_crash_without_mute_hook;
          Alcotest.test_case "partition" `Quick test_injector_partition;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "deterministic replay" `Quick test_campaign_deterministic;
          Alcotest.test_case "shrinks to marker" `Quick test_campaign_shrinks_to_marker;
          Alcotest.test_case "jobs identical (synthetic)" `Quick
            test_campaign_jobs_identical_synthetic;
          Alcotest.test_case "jobs identical (stack)" `Quick
            test_campaign_jobs_identical_stack;
        ] );
      ( "smoke",
        [ Alcotest.test_case "known seed, all stacks" `Quick test_known_seed_all_stacks ] );
      ("properties", qsuite);
    ]
