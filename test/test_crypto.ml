(* Crypto substrate tests: FIPS 180-4 / RFC 4231 vectors plus the simulated
   signature directory. *)

open Qs_crypto

let check_str = Alcotest.(check string)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* SHA-256: official test vectors *)

let test_sha_empty () =
  check_str "empty string"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.digest_hex "")

let test_sha_abc () =
  check_str "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.digest_hex "abc")

let test_sha_two_blocks () =
  check_str "448-bit message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.digest_hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha_896_bit () =
  check_str "896-bit message"
    "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    (Sha256.digest_hex
       "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
        ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")

let test_sha_million_a () =
  check_str "one million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let test_sha_streaming_equals_oneshot () =
  (* Feeding in odd-sized chunks must match the one-shot digest. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 3; 7; 64; 65; 100; 760 ] in
  List.iter
    (fun sz ->
      let take = min sz (String.length msg - !pos) in
      Sha256.feed ctx (String.sub msg !pos take);
      pos := !pos + take)
    sizes;
  check_str "streaming" (Sha256.hex (Sha256.digest_string msg)) (Sha256.hex (Sha256.finalize ctx))

let test_sha_block_boundaries () =
  (* Lengths around the 64-byte block and 56-byte padding boundary. *)
  List.iter
    (fun len ->
      let m = String.make len 'x' in
      let d1 = Sha256.digest_string m in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) m;
      check_str (Printf.sprintf "len %d" len) (Sha256.hex d1) (Sha256.hex (Sha256.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

let test_sha_distinct_inputs () =
  check_bool "different inputs differ" false
    (Sha256.digest_string "a" = Sha256.digest_string "b")

let test_sha_digest_length () =
  Alcotest.(check int) "32 bytes" 32 (String.length (Sha256.digest_string "anything"))

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256: RFC 4231 vectors *)

let test_hmac_rfc4231_case1 () =
  let key = String.make 20 '\x0b' in
  check_str "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key "Hi There")

let test_hmac_rfc4231_case2 () =
  check_str "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

let test_hmac_rfc4231_case3 () =
  let key = String.make 20 '\xaa' in
  let data = String.make 50 '\xdd' in
  check_str "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key data)

let test_hmac_rfc4231_case6_long_key () =
  let key = String.make 131 '\xaa' in
  check_str "case 6 (key > block size)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_hmac_verify () =
  let tag = Hmac.mac ~key:"k" "msg" in
  check_bool "accepts valid" true (Hmac.verify ~key:"k" "msg" ~tag);
  check_bool "rejects wrong msg" false (Hmac.verify ~key:"k" "msG" ~tag);
  check_bool "rejects wrong key" false (Hmac.verify ~key:"j" "msg" ~tag);
  check_bool "rejects truncated tag" false
    (Hmac.verify ~key:"k" "msg" ~tag:(String.sub tag 0 16))

(* ------------------------------------------------------------------ *)
(* Auth: simulated signature directory *)

let test_auth_sign_verify () =
  let dir = Auth.create 4 in
  let s = Auth.seal dir ~signer:2 "hello" in
  check_bool "valid signature accepted" true (Auth.check dir s)

let test_auth_rejects_wrong_signer () =
  let dir = Auth.create 4 in
  let s = Auth.seal dir ~signer:2 "hello" in
  check_bool "claiming another signer fails" false (Auth.check dir { s with Auth.signer = 3 })

let test_auth_rejects_tampered_payload () =
  let dir = Auth.create 4 in
  let s = Auth.seal dir ~signer:1 "hello" in
  check_bool "tampered payload fails" false (Auth.check dir { s with Auth.payload = "hellO" })

let test_auth_rejects_forgery () =
  let dir = Auth.create 4 in
  check_bool "forgery rejected" false (Auth.check dir (Auth.forge dir ~claimed:0 "fake"))

let test_auth_rejects_unknown_signer () =
  let dir = Auth.create 4 in
  let s = Auth.seal dir ~signer:0 "x" in
  check_bool "signer out of universe" false (Auth.check dir { s with Auth.signer = 17 });
  check_bool "negative signer" false (Auth.check dir { s with Auth.signer = -1 })

let test_auth_keys_distinct () =
  let dir = Auth.create 3 in
  let t0 = Auth.sign dir ~signer:0 "m" and t1 = Auth.sign dir ~signer:1 "m" in
  check_bool "per-process keys differ" false (t0 = t1)

let test_auth_deterministic () =
  let a = Auth.create 3 and b = Auth.create 3 in
  check_str "directories reproducible"
    (Qs_crypto.Sha256.hex (Auth.sign a ~signer:1 "m"))
    (Qs_crypto.Sha256.hex (Auth.sign b ~signer:1 "m"))

let test_auth_master_changes_keys () =
  let a = Auth.create ~master:"one" 2 and b = Auth.create ~master:"two" 2 in
  check_bool "master secret matters" false (Auth.sign a ~signer:0 "m" = Auth.sign b ~signer:0 "m")

let test_auth_universe () =
  Alcotest.(check int) "universe size" 5 (Auth.universe (Auth.create 5));
  Alcotest.check_raises "empty universe rejected"
    (Invalid_argument "Auth.create: need at least one process") (fun () ->
      ignore (Auth.create 0))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_hmac_roundtrip =
  QCheck.Test.make ~name:"hmac verify accepts own tag" ~count:100
    QCheck.(pair string string)
    (fun (key, msg) -> Hmac.verify ~key msg ~tag:(Hmac.mac ~key msg))

let prop_auth_roundtrip =
  QCheck.Test.make ~name:"auth check accepts seal" ~count:100
    QCheck.(pair (int_range 0 7) string)
    (fun (signer, payload) ->
      let dir = Auth.create 8 in
      Auth.check dir (Auth.seal dir ~signer payload))

let prop_sha_avalanche =
  QCheck.Test.make ~name:"flipping one byte changes the digest" ~count:100
    QCheck.(pair small_string (int_bound 1000))
    (fun (s, i) ->
      let s = if s = "" then "x" else s in
      let i = i mod String.length s in
      let flipped =
        String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor 1) else c) s
      in
      Sha256.digest_string s <> Sha256.digest_string flipped)

(* Satellite: the two properties the evidence plane's soundness rests on.
   A tag never verifies under any key but its signer's (so a forgery can
   only ever incriminate the channel, not the claimed owner), and any
   single-byte mutation of the payload or the tag is rejected (so tampered
   frames cannot masquerade as the owner's equivocation). *)

let flip_byte s i x =
  String.mapi (fun j c -> if j = i then Char.chr (Char.code c lxor x) else c) s

let prop_auth_no_cross_signer =
  QCheck.Test.make ~name:"no cross-signer verification" ~count:200
    QCheck.(triple (int_range 0 7) (int_range 0 6) string)
    (fun (i, dj, payload) ->
      let j = (i + 1 + dj) mod 8 in
      let dir = Auth.create 8 in
      not (Auth.verify dir ~signer:j payload (Auth.sign dir ~signer:i payload)))

let prop_auth_payload_mutation =
  QCheck.Test.make ~name:"single-byte payload mutation rejected" ~count:200
    QCheck.(quad (int_range 0 7) string (int_bound 1000) (int_range 1 255))
    (fun (signer, payload, i, x) ->
      let payload = if payload = "" then "x" else payload in
      let dir = Auth.create 8 in
      let s = Auth.seal dir ~signer payload in
      let mutated = flip_byte payload (i mod String.length payload) x in
      not (Auth.check dir { s with Auth.payload = mutated }))

let prop_auth_tag_mutation =
  QCheck.Test.make ~name:"single-byte tag mutation rejected" ~count:200
    QCheck.(quad (int_range 0 7) string (int_bound 1000) (int_range 1 255))
    (fun (signer, payload, i, x) ->
      let dir = Auth.create 8 in
      let s = Auth.seal dir ~signer payload in
      let sg = flip_byte s.Auth.signature (i mod String.length s.Auth.signature) x in
      not (Auth.check dir { s with Auth.signature = sg }))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_hmac_roundtrip;
      prop_auth_roundtrip;
      prop_sha_avalanche;
      prop_auth_no_cross_signer;
      prop_auth_payload_mutation;
      prop_auth_tag_mutation;
    ]

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        [
          Alcotest.test_case "empty vector" `Quick test_sha_empty;
          Alcotest.test_case "abc vector" `Quick test_sha_abc;
          Alcotest.test_case "two-block vector" `Quick test_sha_two_blocks;
          Alcotest.test_case "896-bit vector" `Quick test_sha_896_bit;
          Alcotest.test_case "million a vector" `Slow test_sha_million_a;
          Alcotest.test_case "streaming equals one-shot" `Quick test_sha_streaming_equals_oneshot;
          Alcotest.test_case "block boundary lengths" `Quick test_sha_block_boundaries;
          Alcotest.test_case "distinct inputs" `Quick test_sha_distinct_inputs;
          Alcotest.test_case "digest length" `Quick test_sha_digest_length;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 1" `Quick test_hmac_rfc4231_case1;
          Alcotest.test_case "rfc4231 case 2" `Quick test_hmac_rfc4231_case2;
          Alcotest.test_case "rfc4231 case 3" `Quick test_hmac_rfc4231_case3;
          Alcotest.test_case "rfc4231 case 6" `Quick test_hmac_rfc4231_case6_long_key;
          Alcotest.test_case "verify" `Quick test_hmac_verify;
        ] );
      ( "auth",
        [
          Alcotest.test_case "sign/verify roundtrip" `Quick test_auth_sign_verify;
          Alcotest.test_case "wrong signer rejected" `Quick test_auth_rejects_wrong_signer;
          Alcotest.test_case "tampered payload rejected" `Quick test_auth_rejects_tampered_payload;
          Alcotest.test_case "forgery rejected" `Quick test_auth_rejects_forgery;
          Alcotest.test_case "unknown signer rejected" `Quick test_auth_rejects_unknown_signer;
          Alcotest.test_case "keys distinct" `Quick test_auth_keys_distinct;
          Alcotest.test_case "deterministic" `Quick test_auth_deterministic;
          Alcotest.test_case "master secret" `Quick test_auth_master_changes_keys;
          Alcotest.test_case "universe" `Quick test_auth_universe;
        ] );
      ("properties", qsuite);
    ]
