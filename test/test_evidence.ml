(* Commission-fault evidence: the store's proof / forgery / quarantine
   logic in isolation, permanent exclusion in both selectors, and the
   end-to-end acceptance scenario — a seeded chaos run in which a proven
   equivocator is permanently excluded from quorums while no correct
   process is ever proof-excluded. *)

module Auth = Qs_crypto.Auth
module Msg = Qs_core.Msg
module QS = Qs_core.Quorum_select
module FS = Qs_follower.Follower_select
module Graph = Qs_graph.Graph
module Evidence = Qs_evidence.Evidence
module Fault = Qs_faults.Fault
module Campaign = Qs_faults.Campaign
module Chaos = Qs_harness.Chaos
module Stime = Qs_sim.Stime

let ms = Stime.of_ms

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let row owner cells = { Msg.owner; row = Array.of_list cells }

(* ------------------------------------------------------------------ *)
(* Incomparability: the conviction criterion *)

let test_incomparable () =
  check_bool "crossing rows conflict" true
    (Evidence.incomparable [| 1; 0; 0 |] [| 0; 1; 0 |]);
  check_bool "dominating rows don't" false
    (Evidence.incomparable [| 1; 1; 0 |] [| 0; 1; 0 |]);
  check_bool "equal rows don't" false
    (Evidence.incomparable [| 2; 2 |] [| 2; 2 |]);
  check_bool "malformed lengths count as conflicting" true
    (Evidence.incomparable [| 1 |] [| 1; 0 |])

(* ------------------------------------------------------------------ *)
(* Store verdicts *)

let test_observe_proof () =
  let n = 4 in
  let auth = Auth.create n in
  let store = Evidence.create ~auth ~me:0 ~n in
  let a = Msg.seal auth (row 2 [ 0; 0; 1; 0 ]) in
  let b = Msg.seal auth (row 2 [ 1; 0; 0; 0 ]) in
  check_bool "first row is fine" true (Evidence.observe store ~src:2 a = Evidence.Ok);
  (match Evidence.observe store ~src:1 b with
  | Evidence.Proof p ->
    check_int "culprit is the owner" 2 p.Evidence.culprit;
    check_bool "the proof is self-contained" true (Evidence.check_proof auth p);
    check_bool "a second store admits it" true
      (let other = Evidence.create ~auth ~me:3 ~n in
       Evidence.admit other p && Evidence.is_excluded other 2);
    check_bool "re-admitting is a no-op" false
      (Evidence.admit store p)
  | _ -> Alcotest.fail "conflicting rows must yield a transferable proof");
  check_bool "culprit is excluded locally" true (Evidence.is_excluded store 2);
  check_bool "later frames from the culprit are absorbed" true
    (Evidence.observe store ~src:2 (Msg.seal auth (row 2 [ 5; 5; 5; 5 ]))
    = Evidence.Ok)

let test_monotone_growth_is_innocent () =
  let n = 3 in
  let auth = Auth.create n in
  let store = Evidence.create ~auth ~me:0 ~n in
  List.iter
    (fun cells ->
      check_bool "growing rows never convict" true
        (Evidence.observe store ~src:1 (Msg.seal auth (row 1 cells))
        = Evidence.Ok))
    [ [ 0; 0; 0 ]; [ 1; 0; 0 ]; [ 1; 0; 2 ]; [ 3; 0; 2 ] ];
  check_int "no exclusions" 0 (List.length (Evidence.excluded store))

let test_forgery_blames_the_channel () =
  let n = 4 in
  let auth = Auth.create n in
  let store = Evidence.create ~auth ~me:0 ~n in
  let u = row 1 [ 0; 0; 9; 9 ] in
  let tag = (Auth.forge auth ~claimed:1 (Msg.encode u)).Auth.signature in
  let forged = { Msg.update = u; signature = tag } in
  check_bool "bad tag is rejected" true
    (Evidence.observe store ~src:3 forged = Evidence.Forged);
  check_bool "the delivering channel is quarantined" true
    (List.mem 3 (Evidence.quarantined store));
  check_bool "the claimed signer stays innocent" false (Evidence.is_excluded store 1);
  check_int "nobody is excluded by a forgery" 0 (List.length (Evidence.excluded store));
  check_int "forgeries are counted" 1 (Evidence.forgeries store)

let test_admit_rejects_invalid_proofs () =
  let n = 3 in
  let auth = Auth.create n in
  let store = Evidence.create ~auth ~me:0 ~n in
  let a = Msg.seal auth (row 1 [ 0; 0; 1 ]) in
  (* comparable frames are no proof *)
  check_bool "comparable pair rejected" false
    (Evidence.admit store { Evidence.culprit = 1; first = a; second = a });
  (* conflicting rows, but the second tag is broken *)
  let b = { (Msg.seal auth (row 1 [ 1; 0; 0 ])) with Msg.signature = "xx" } in
  check_bool "unverifiable pair rejected" false
    (Evidence.admit store { Evidence.culprit = 1; first = a; second = b });
  check_int "nothing excluded" 0 (List.length (Evidence.excluded store))

(* ------------------------------------------------------------------ *)
(* Selector exclusion *)

let test_qs_exclusion () =
  let config = { QS.n = 5; f = 1 } in
  let auth = Auth.create 5 in
  let qs =
    QS.create config ~me:0 ~auth ~send:(fun _ -> ()) ~on_quorum:(fun _ -> ()) ()
  in
  check_bool "default quorum holds p3" true (List.mem 3 (QS.last_quorum qs));
  QS.exclude qs 3;
  check_bool "convicted p3 leaves the quorum" false (List.mem 3 (QS.last_quorum qs));
  check_int "quorum size is still q" 4 (List.length (QS.last_quorum qs));
  QS.exclude qs 3;
  check_bool "idempotent" true (QS.excluded qs = [ 3 ]);
  (* beyond the f budget convictions are recorded but not applied *)
  QS.exclude qs 2;
  check_bool "second conviction recorded" true (QS.excluded qs = [ 2; 3 ]);
  check_bool "but only f exclusions apply" true (List.mem 2 (QS.last_quorum qs));
  (* exclusion survives amnesia: a proof is a permanent fact *)
  QS.amnesia qs;
  QS.absorb qs ~matrix:(Qs_core.Suspicion_matrix.create 5) ~epoch:1;
  check_bool "exclusion survives amnesia" false (List.mem 3 (QS.last_quorum qs))

let test_fs_exclusion () =
  let g = Graph.create 7 in
  check_bool "excluded processes are never picked as followers" true
    (not (List.mem 1 (FS.select_followers ~excluded:[ 1 ] g ~leader:0 ~q:5)));
  let fw =
    { Qs_follower.Fmsg.leader = 0; epoch = 1; followers = [ 1; 2; 3; 4 ]; line = [] }
  in
  check_bool "well-formed without exclusions" true
    (FS.well_formed ~n:7 ~q:5 ~suspect_graph:g fw);
  check_bool "a quorum holding a convict is rejected" false
    (FS.well_formed ~excluded:[ 2 ] ~n:7 ~q:5 ~suspect_graph:g fw);
  check_bool "a convicted leader is rejected" false
    (FS.well_formed ~excluded:[ 0 ] ~n:7 ~q:5 ~suspect_graph:g fw)

(* ------------------------------------------------------------------ *)
(* Acceptance: equivocation in a live stack convicts and excludes the
   culprit, and only the culprit. The crash stirs suspicion gossip, so the
   armed equivocator broadcasts destination-specific row variants; any
   store holding two of them owns a transferable proof. *)

(* The crash must land while requests are still in flight: PBFT's detector
   expects prepare/commit messages only from current quorum members, so a
   crash after the workload quiesces never raises a suspicion and the armed
   equivocator has no row broadcasts to corrupt (p4 sits in the default
   quorum {0..4}; the 2ms start beats the ~10ms commit wave). *)
let acceptance_schedule =
  [
    Fault.at ~start:(ms 1) (Fault.Equivocate { src = 0; scope = [ 1; 2 ] });
    Fault.at ~start:(ms 2) (Fault.Crash 4);
  ]

let test_equivocator_excluded () =
  let model = Fault.classify ~n:7 ~f:2 acceptance_schedule in
  (match model with
  | Fault.In_model { faulty } ->
    check_bool "schedule blames exactly the commission source and the crash"
      true
      (List.sort compare faulty = [ 0; 4 ])
  | Fault.Out_of_model _ -> Alcotest.fail "schedule must be in-model");
  let outcome, stores =
    Chaos.execute_with_evidence Chaos.Pbft ~seed:90210 ~model acceptance_schedule
  in
  check_bool "all monitor invariants hold" true (outcome.Campaign.violations = []);
  check_bool "liveness holds" true (outcome.Campaign.liveness = []);
  check_bool "at least one equivocation proof was found" true
    (outcome.Campaign.proofs > 0);
  let correct = [ 1; 2; 3; 5; 6 ] in
  List.iter
    (fun p ->
      check_bool
        (Printf.sprintf "store %d permanently excludes the equivocator" p)
        true
        (Evidence.is_excluded stores.(p) 0);
      List.iter
        (fun q ->
          check_bool
            (Printf.sprintf "correct p%d is not excluded at store %d" q p)
            false
            (Evidence.is_excluded stores.(p) q))
        correct)
    correct

(* Every stack runs the commission mix clean: an equivocator plus a bounded
   slander phase stay within the failure budget, all monitor invariants
   (including the Theorem-3/9 quorum bounds) hold, and the slander forgeries
   are detected rather than believed. *)
let test_commission_clean_all_stacks () =
  List.iter
    (fun stack ->
      let params =
        { (Chaos.default_params stack) with Chaos.horizon = ms 4_000 }
      in
      let n = params.Chaos.n in
      let sched =
        [
          Fault.at ~start:(ms 150) (Fault.Equivocate { src = 0; scope = [ 1; 2 ] });
          Fault.at ~start:(ms 300) ~stop:(ms 2_000)
            (Fault.Slander { src = n - 1; victim = 1 });
        ]
      in
      let model = Fault.classify ~n ~f:params.Chaos.f sched in
      let o = Chaos.execute stack ~params ~seed:31337 ~model sched in
      check_bool (Chaos.name stack ^ ": all invariants hold") true
        (o.Campaign.violations = []);
      check_bool (Chaos.name stack ^ ": liveness holds") true
        (o.Campaign.liveness = []);
      check_bool (Chaos.name stack ^ ": monitor ran") true (o.Campaign.checks > 0);
      check_bool (Chaos.name stack ^ ": slander forgeries were rejected") true
        (o.Campaign.forgeries > 0))
    Chaos.all

let () =
  Alcotest.run "evidence"
    [
      ( "store",
        [
          Alcotest.test_case "incomparable" `Quick test_incomparable;
          Alcotest.test_case "observe-proof" `Quick test_observe_proof;
          Alcotest.test_case "monotone-innocent" `Quick
            test_monotone_growth_is_innocent;
          Alcotest.test_case "forgery-channel" `Quick test_forgery_blames_the_channel;
          Alcotest.test_case "admit-invalid" `Quick test_admit_rejects_invalid_proofs;
        ] );
      ( "exclusion",
        [
          Alcotest.test_case "quorum-select" `Quick test_qs_exclusion;
          Alcotest.test_case "follower-select" `Quick test_fs_exclusion;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "equivocator-excluded" `Slow test_equivocator_excluded;
          Alcotest.test_case "commission-clean-stacks" `Slow
            test_commission_clean_all_stacks;
        ] );
    ]
