(* Failure-detector tests: the Section IV-B event interface and the
   completeness/accuracy properties. *)

module Sim = Qs_sim.Sim
module Timeout = Qs_fd.Timeout
module Detector = Qs_fd.Detector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))

type harness = {
  sim : Sim.t;
  fd : string Detector.t;
  delivered : (int * string) list ref;
  published : int list list ref;  (* every SUSPECTED set, in order *)
}

let make ?(n = 4) ?(initial = 100) ?(strategy = Timeout.Fixed) ?authenticate () =
  let sim = Sim.create () in
  let delivered = ref [] in
  let published = ref [] in
  let timeouts = Timeout.create ~n ~initial strategy in
  let fd =
    Detector.create ~sim ~me:0 ~n ?authenticate ~timeouts
      ~deliver:(fun ~src m -> delivered := (src, m) :: !delivered)
      ~on_suspected:(fun s -> published := s :: !published)
      ()
  in
  { sim; fd; delivered; published }

let last_suspects h = match !(h.published) with [] -> [] | s :: _ -> s

(* ------------------------------------------------------------------ *)

let test_timely_message_no_suspicion () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun m -> m = "commit");
  Sim.schedule h.sim ~delay:50 (fun () -> Detector.receive h.fd ~src:1 "commit");
  Sim.run h.sim;
  check_ilist "no suspicion" [] (Detector.suspected h.fd);
  check_int "no events published" 0 (List.length !(h.published));
  check_int "delivered" 1 (List.length !(h.delivered))

let test_missed_expectation_suspected () =
  let h = make () in
  Detector.expect h.fd ~from:2 (fun _ -> true);
  Sim.run h.sim;
  check_ilist "suspected at deadline" [ 2 ] (Detector.suspected h.fd);
  check_ilist "published set" [ 2 ] (last_suspects h);
  check_int "raised once" 1 (Detector.raised_total h.fd)

let test_late_message_cancels_suspicion () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun m -> m = "m");
  (* Arrives at 150, deadline at 100. *)
  Sim.schedule h.sim ~delay:150 (fun () -> Detector.receive h.fd ~src:1 "m");
  Sim.run h.sim;
  check_ilist "suspicion cancelled" [] (Detector.suspected h.fd);
  Alcotest.(check (list (list int))) "raise then cancel" [ []; [ 1 ] ] !(h.published);
  check_int "false suspicion counted" 1 (Detector.false_suspicions h.fd);
  check_int "still delivered" 1 (List.length !(h.delivered))

let test_wrong_predicate_does_not_fulfill () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun m -> m = "expected");
  Sim.schedule h.sim ~delay:10 (fun () -> Detector.receive h.fd ~src:1 "other");
  Sim.run h.sim;
  check_ilist "still suspected" [ 1 ] (Detector.suspected h.fd);
  check_int "other message still delivered" 1 (List.length !(h.delivered))

let test_wrong_sender_does_not_fulfill () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Sim.schedule h.sim ~delay:10 (fun () -> Detector.receive h.fd ~src:2 "m");
  Sim.run h.sim;
  check_ilist "sender mismatch" [ 1 ] (Detector.suspected h.fd)

let test_detected_is_permanent () =
  let h = make () in
  Detector.detected h.fd 3;
  check_bool "suspected" true (Detector.is_suspected h.fd 3);
  check_bool "detected" true (Detector.is_detected h.fd 3);
  (* A matching message must NOT clear a detection. *)
  Detector.receive h.fd ~src:3 "anything";
  Detector.cancel_all h.fd;
  Sim.run h.sim;
  check_bool "still suspected after cancel" true (Detector.is_suspected h.fd 3)

let test_detected_idempotent () =
  let h = make () in
  Detector.detected h.fd 2;
  Detector.detected h.fd 2;
  check_int "published once" 1 (List.length !(h.published));
  check_int "raised once" 1 (Detector.raised_total h.fd)

let test_cancel_clears_expectations_and_suspicions () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Detector.expect h.fd ~from:2 (fun _ -> true);
  Sim.run h.sim;
  check_ilist "both suspected" [ 1; 2 ] (Detector.suspected h.fd);
  Detector.cancel_all h.fd;
  check_ilist "cleared" [] (Detector.suspected h.fd);
  check_int "no open expectations" 0 (Detector.open_expectations h.fd)

let test_cancel_before_deadline_prevents_suspicion () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Sim.schedule h.sim ~delay:50 (fun () -> Detector.cancel_all h.fd);
  Sim.run h.sim;
  check_ilist "never suspected" [] (Detector.suspected h.fd);
  check_int "nothing published" 0 (List.length !(h.published))

let test_multiple_overdue_expectations_single_suspect () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun m -> m = "a");
  Detector.expect h.fd ~from:1 (fun m -> m = "b");
  Sim.run h.sim;
  check_ilist "one suspect entry" [ 1 ] (Detector.suspected h.fd);
  (* Fulfilling only one of the two keeps the suspicion alive. *)
  Detector.receive h.fd ~src:1 "a";
  check_ilist "still suspected (b missing)" [ 1 ] (Detector.suspected h.fd);
  Detector.receive h.fd ~src:1 "b";
  check_ilist "cleared when all fulfilled" [] (Detector.suspected h.fd)

let test_one_message_fulfills_all_matching () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Detector.expect h.fd ~from:1 (fun m -> String.length m = 1) ~tag:"short";
  Detector.receive h.fd ~src:1 "x";
  check_int "both closed" 0 (Detector.open_expectations h.fd)

let test_authentication_rejects () =
  let h = make ~authenticate:(fun ~src _ -> src <> 2) () in
  Detector.receive h.fd ~src:2 "forged";
  Detector.receive h.fd ~src:1 "fine";
  check_int "rejected count" 1 (Detector.rejected_messages h.fd);
  Alcotest.(check (list (pair int string))) "only authentic delivered" [ (1, "fine") ] !(h.delivered)

let test_unauthenticated_does_not_fulfill () =
  let h = make ~authenticate:(fun ~src:_ m -> m <> "forged") () in
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Sim.schedule h.sim ~delay:10 (fun () -> Detector.receive h.fd ~src:1 "forged");
  Sim.run h.sim;
  check_ilist "forgery cannot clear expectation" [ 1 ] (Detector.suspected h.fd)

let test_published_sets_are_sorted_and_deduped () =
  let h = make () in
  Detector.expect h.fd ~from:3 (fun _ -> true);
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Sim.run h.sim;
  check_ilist "sorted" [ 1; 3 ] (last_suspects h);
  (* Publishing happens only on change. *)
  let before = List.length !(h.published) in
  Detector.receive h.fd ~src:2 "unrelated";
  check_int "no spurious publish" before (List.length !(h.published))

let test_timeout_override () =
  (* A per-expectation deadline overrides the peer's adaptive timeout
     (chain protocols scale deadlines with topology distance). *)
  let h = make ~initial:100 () in
  Detector.expect h.fd ~from:1 ~timeout:300 (fun _ -> true);
  Detector.expect h.fd ~from:2 (fun _ -> true);
  (* At t=150 only the default-deadline expectation (100) has fired. *)
  Sim.run ~until:150 h.sim;
  check_ilist "only peer 2 suspected yet" [ 2 ] (Detector.suspected h.fd);
  Sim.run h.sim;
  check_ilist "override fired later" [ 1; 2 ] (Detector.suspected h.fd)

let test_per_peer_timeouts_independent () =
  (* Adaptation for one peer must not slow detection of another. *)
  let sim = Sim.create () in
  let timeouts = Timeout.create ~n:3 ~initial:50 (Timeout.Exponential { factor = 4.0; max = 1000 }) in
  let fd =
    Detector.create ~sim ~me:0 ~n:3 ~timeouts
      ~deliver:(fun ~src:_ _ -> ())
      ~on_suspected:(fun _ -> ())
      ()
  in
  (* Peer 1 is slow once: timeout for peer 1 quadruples. *)
  Detector.expect fd ~from:1 (fun m -> m = "a");
  Sim.schedule sim ~delay:80 (fun () -> Detector.receive fd ~src:1 "a");
  Sim.run sim;
  Alcotest.(check int) "peer 1 timeout adapted" 200 (Timeout.current timeouts 1);
  Alcotest.(check int) "peer 2 untouched" 50 (Timeout.current timeouts 2)

let test_false_suspicion_counter_not_inflated_by_cancel () =
  let h = make () in
  Detector.expect h.fd ~from:1 (fun _ -> true);
  Sim.run h.sim;
  (* Overdue, then cancelled (not fulfilled): no false suspicion—the message
     never arrived, so the suspicion was never contradicted. *)
  Detector.cancel_all h.fd;
  check_int "no false suspicion recorded" 0 (Detector.false_suspicions h.fd)

(* ------------------------------------------------------------------ *)
(* Eventual strong accuracy with adaptive timeouts *)

(* A peer that always answers after [delay]; we expect a message every round.
   Count suspicions raised over many rounds. *)
let accuracy_run strategy ~rounds ~delay ~initial =
  let sim = Sim.create () in
  let timeouts = Timeout.create ~n:2 ~initial strategy in
  let raised_after_warmup = ref 0 in
  let warmup = rounds / 2 in
  let round = ref 0 in
  let fd =
    Detector.create ~sim ~me:0 ~n:2 ~timeouts
      ~deliver:(fun ~src:_ _ -> ())
      ~on_suspected:(fun s -> if s <> [] && !round > warmup then incr raised_after_warmup)
      ()
  in
  for r = 1 to rounds do
    Sim.schedule_at sim ~at:(r * 1000) (fun () ->
        round := r;
        Detector.expect fd ~from:1 (fun m -> m = r);
        Sim.schedule sim ~delay (fun () -> Detector.receive fd ~src:1 r))
  done;
  Sim.run sim;
  !raised_after_warmup

let test_accuracy_exponential_backoff_converges () =
  let raised =
    accuracy_run
      (Timeout.Exponential { factor = 2.0; max = 1_000_000 })
      ~rounds:40 ~delay:400 ~initial:50
  in
  check_int "no false suspicions after convergence" 0 raised

let test_accuracy_fixed_timeout_never_converges () =
  let raised = accuracy_run Timeout.Fixed ~rounds:40 ~delay:400 ~initial:50 in
  check_bool "fixed timeout keeps suspecting (ablation)" true (raised > 0)

let test_accuracy_additive_converges () =
  let raised =
    accuracy_run
      (Timeout.Additive { step = 100; max = 1_000_000 })
      ~rounds:40 ~delay:400 ~initial:50
  in
  check_int "additive converges too" 0 raised

(* ------------------------------------------------------------------ *)
(* Timeout module *)

let test_timeout_fixed () =
  let t = Timeout.create ~n:2 ~initial:100 Timeout.Fixed in
  Timeout.on_false_suspicion t 0;
  check_int "unchanged" 100 (Timeout.current t 0);
  check_int "no increases recorded" 0 (Timeout.increases t)

let test_timeout_exponential () =
  let t = Timeout.create ~n:2 ~initial:100 (Timeout.Exponential { factor = 2.0; max = 350 }) in
  Timeout.on_false_suspicion t 0;
  check_int "doubled" 200 (Timeout.current t 0);
  check_int "peer isolated" 100 (Timeout.current t 1);
  Timeout.on_false_suspicion t 0;
  Timeout.on_false_suspicion t 0;
  check_int "capped" 350 (Timeout.current t 0);
  check_int "increases" 3 (Timeout.increases t)

let test_timeout_additive () =
  let t = Timeout.create ~n:1 ~initial:100 (Timeout.Additive { step = 50; max = 175 }) in
  Timeout.on_false_suspicion t 0;
  check_int "stepped" 150 (Timeout.current t 0);
  Timeout.on_false_suspicion t 0;
  check_int "capped" 175 (Timeout.current t 0)

let test_timeout_validation () =
  Alcotest.check_raises "zero initial" (Invalid_argument "Timeout.create: initial must be positive")
    (fun () -> ignore (Timeout.create ~n:1 ~initial:0 Timeout.Fixed));
  Alcotest.check_raises "exponential factor 1.0 cannot adapt"
    (Invalid_argument "Timeout.create: Exponential factor must exceed 1.0") (fun () ->
      ignore (Timeout.create ~n:1 ~initial:100 (Timeout.Exponential { factor = 1.0; max = 200 })));
  Alcotest.check_raises "exponential cap below initial"
    (Invalid_argument "Timeout.create: Exponential max must be >= initial") (fun () ->
      ignore (Timeout.create ~n:1 ~initial:100 (Timeout.Exponential { factor = 2.0; max = 50 })));
  Alcotest.check_raises "additive zero step cannot adapt"
    (Invalid_argument "Timeout.create: Additive step must be positive") (fun () ->
      ignore (Timeout.create ~n:1 ~initial:100 (Timeout.Additive { step = 0; max = 200 })));
  Alcotest.check_raises "additive cap below initial"
    (Invalid_argument "Timeout.create: Additive max must be >= initial") (fun () ->
      ignore (Timeout.create ~n:1 ~initial:100 (Timeout.Additive { step = 10; max = 99 })))

(* A late message arriving after its expectation was cancelled (the
   view-change pattern) must still adapt the timeout: the suspicion it
   proves false already fed a reconfiguration, and without the adaptation
   the next view repeats it forever. *)
let test_stale_cancelled_expectation_still_adapts () =
  let sim = Sim.create () in
  let timeouts = Timeout.create ~n:2 ~initial:50 (Timeout.Exponential { factor = 2.0; max = 1000 }) in
  let fd =
    Detector.create ~sim ~me:0 ~n:2 ~timeouts
      ~deliver:(fun ~src:_ _ -> ())
      ~on_suspected:(fun _ -> ())
      ()
  in
  Detector.expect fd ~from:1 (fun m -> m = "late");
  (* Deadline passes at 50, the resulting suspicion triggers a cancel (as a
     view change would), and the expected message arrives at 80. *)
  Sim.schedule sim ~delay:60 (fun () -> Detector.cancel_all fd);
  Sim.schedule sim ~delay:80 (fun () -> Detector.receive fd ~src:1 "late");
  Sim.run sim;
  check_int "timeout adapted from the stale match" 100 (Timeout.current timeouts 1);
  check_int "counted as a false suspicion" 1 (Detector.false_suspicions fd);
  check_bool "suspicion itself stays cleared" false (Detector.is_suspected fd 1)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_completeness =
  (* Whatever subset of expected messages actually arrives (on time), the
     suspect set is exactly the peers with a missing message. *)
  QCheck.Test.make ~name:"expectation completeness" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 6) bool)
    (fun answers ->
      let n = List.length answers + 1 in
      let sim = Sim.create () in
      let timeouts = Timeout.create ~n ~initial:100 Timeout.Fixed in
      let fd =
        Detector.create ~sim ~me:0 ~n ~timeouts
          ~deliver:(fun ~src:_ _ -> ())
          ~on_suspected:(fun _ -> ())
          ()
      in
      List.iteri
        (fun i answers_p ->
          let peer = i + 1 in
          Detector.expect fd ~from:peer (fun _ -> true);
          if answers_p then
            Sim.schedule sim ~delay:10 (fun () -> Detector.receive fd ~src:peer "ok"))
        answers;
      Sim.run sim;
      let expected =
        List.filteri (fun i _ -> not (List.nth answers i)) (List.init (n - 1) (fun i -> i + 1))
      in
      Detector.suspected fd = expected)

let prop_detection_dominates =
  QCheck.Test.make ~name:"detections survive any message pattern" ~count:100
    QCheck.(pair (int_range 1 5) (list (int_range 1 5)))
    (fun (culprit, senders) ->
      let sim = Sim.create () in
      let timeouts = Timeout.create ~n:6 ~initial:100 Timeout.Fixed in
      let fd =
        Detector.create ~sim ~me:0 ~n:6 ~timeouts
          ~deliver:(fun ~src:_ _ -> ())
          ~on_suspected:(fun _ -> ())
          ()
      in
      Detector.detected fd culprit;
      List.iter (fun s -> Detector.receive fd ~src:s "m") senders;
      Detector.cancel_all fd;
      Sim.run sim;
      Detector.is_suspected fd culprit)

(* A strategy with an [initial] it accepts, plus driving randomness. *)
let arbitrary_strategy_and_initial =
  let open QCheck in
  let gen =
    Gen.(
      int_range 1 200 >>= fun initial ->
      oneof
        [
          return (Timeout.Fixed, initial);
          (pair (float_range 1.01 4.0) (int_range 0 5000) >|= fun (factor, extra) ->
           (Timeout.Exponential { factor; max = initial + extra }, initial));
          (pair (int_range 1 300) (int_range 0 5000) >|= fun (step, extra) ->
           (Timeout.Additive { step; max = initial + extra }, initial));
        ])
  and print (s, initial) =
    let s =
      match s with
      | Timeout.Fixed -> "Fixed"
      | Timeout.Exponential { factor; max } ->
        Printf.sprintf "Exp{factor=%g; max=%d}" factor max
      | Timeout.Additive { step; max } ->
        Printf.sprintf "Add{step=%d; max=%d}" step max
    in
    Printf.sprintf "(%s, initial=%d)" s initial
  in
  QCheck.make ~print gen

let prop_export_import_roundtrip =
  (* Any sequence of per-peer adaptations survives export into a fresh
     instance: the durable part of the adaptive state is exactly the
     per-peer timeouts. *)
  QCheck.Test.make ~name:"timeout export/import round-trips adapted state" ~count:200
    QCheck.(pair arbitrary_strategy_and_initial (small_list (int_range 0 4)))
    (fun ((strategy, initial), adaptations) ->
      let n = 5 in
      let t = Timeout.create ~n ~initial strategy in
      List.iter (fun p -> Timeout.on_false_suspicion t p) adaptations;
      let t' = Timeout.create ~n ~initial strategy in
      Timeout.import t' (Timeout.export t);
      List.for_all (fun p -> Timeout.current t' p = Timeout.current t p)
        (List.init n (fun p -> p)))

let prop_backoff_bounds =
  (* Under any failure/success pattern the backoff never dips below its
     creation-time floor, never exceeds its strategy cap, grows monotonically
     between resets, and every jittered draw stays within the +/- band. *)
  QCheck.Test.make ~name:"backoff stays within floor/cap and jitter bounds" ~count:300
    QCheck.(
      triple arbitrary_strategy_and_initial
        (make ~print:string_of_float Gen.(float_bound_inclusive 0.99))
        (small_list (pair bool (make ~print:string_of_float Gen.(float_bound_exclusive 1.0)))))
    (fun ((strategy, initial), jitter, events) ->
      let b = Timeout.Backoff.create ~initial ~jitter strategy in
      (* [Fixed] has no cap: the un-jittered delay never moves, but a draw
         may still jitter above [initial]. *)
      let cap =
        match strategy with
        | Timeout.Fixed -> None
        | Timeout.Exponential { max; _ } | Timeout.Additive { max; _ } -> Some max
      in
      List.for_all
        (fun (fail, u) ->
          let before = Timeout.Backoff.current b in
          if fail then Timeout.Backoff.advance b else Timeout.Backoff.reset b;
          let current = Timeout.Backoff.current b in
          let monotone = if fail then current >= before else current = initial in
          let d = Timeout.Backoff.delay b ~u in
          let lo = float_of_int current *. (1.0 -. jitter) in
          let hi = float_of_int current *. (1.0 +. jitter) in
          monotone
          && current >= initial
          && (match cap with Some m -> current <= m && d <= m | None -> true)
          && d >= initial
          && float_of_int d >= lo -. 1.0
          && float_of_int d <= hi +. 1.0)
        events)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_completeness;
      prop_detection_dominates;
      prop_export_import_roundtrip;
      prop_backoff_bounds;
    ]

let () =
  Alcotest.run "fd"
    [
      ( "detector",
        [
          Alcotest.test_case "timely message, no suspicion" `Quick test_timely_message_no_suspicion;
          Alcotest.test_case "missed expectation suspected" `Quick test_missed_expectation_suspected;
          Alcotest.test_case "late message cancels" `Quick test_late_message_cancels_suspicion;
          Alcotest.test_case "predicate mismatch" `Quick test_wrong_predicate_does_not_fulfill;
          Alcotest.test_case "sender mismatch" `Quick test_wrong_sender_does_not_fulfill;
          Alcotest.test_case "detected permanent" `Quick test_detected_is_permanent;
          Alcotest.test_case "detected idempotent" `Quick test_detected_idempotent;
          Alcotest.test_case "cancel clears" `Quick test_cancel_clears_expectations_and_suspicions;
          Alcotest.test_case "cancel prevents" `Quick test_cancel_before_deadline_prevents_suspicion;
          Alcotest.test_case "multiple expectations one peer" `Quick
            test_multiple_overdue_expectations_single_suspect;
          Alcotest.test_case "one message fulfills all" `Quick test_one_message_fulfills_all_matching;
          Alcotest.test_case "authentication rejects" `Quick test_authentication_rejects;
          Alcotest.test_case "forgery cannot fulfill" `Quick test_unauthenticated_does_not_fulfill;
          Alcotest.test_case "published sets sorted" `Quick test_published_sets_are_sorted_and_deduped;
          Alcotest.test_case "timeout override" `Quick test_timeout_override;
          Alcotest.test_case "per-peer timeout isolation" `Quick test_per_peer_timeouts_independent;
          Alcotest.test_case "cancel does not inflate false count" `Quick
            test_false_suspicion_counter_not_inflated_by_cancel;
          Alcotest.test_case "stale cancelled expectation adapts" `Quick
            test_stale_cancelled_expectation_still_adapts;
        ] );
      ( "accuracy",
        [
          Alcotest.test_case "exponential converges" `Quick test_accuracy_exponential_backoff_converges;
          Alcotest.test_case "fixed never converges (ablation)" `Quick
            test_accuracy_fixed_timeout_never_converges;
          Alcotest.test_case "additive converges" `Quick test_accuracy_additive_converges;
        ] );
      ( "timeout",
        [
          Alcotest.test_case "fixed" `Quick test_timeout_fixed;
          Alcotest.test_case "exponential" `Quick test_timeout_exponential;
          Alcotest.test_case "additive" `Quick test_timeout_additive;
          Alcotest.test_case "validation" `Quick test_timeout_validation;
        ] );
      ("properties", qsuite);
    ]
