(* Harness tests: every experiment must reproduce its paper claim (all
   verdicts ok), and the attack drivers must respect the proven bounds. *)

module Experiments = Qs_harness.Experiments
module Leader_attack = Qs_harness.Leader_attack
module Verdict = Qs_harness.Verdict
module E_detector = Qs_harness.E_detector

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let assert_all_ok (o : Experiments.outcome) =
  List.iter
    (fun v ->
      check_bool (o.Experiments.id ^ ": " ^ v.Verdict.label) true v.Verdict.ok)
    o.Experiments.verdicts;
  check_bool (o.Experiments.id ^ " rendered something") true
    (String.length o.Experiments.rendered > 0)

let test_e1 () = assert_all_ok (Experiments.e1 ())

let test_e2_quick () = assert_all_ok (Experiments.e2 ~fs:[ 1; 2; 3 ] ())

let test_e3_quick () = assert_all_ok (Experiments.e3 ~fs:[ 1; 2; 3 ] ())

let test_e4_quick () = assert_all_ok (Experiments.e4 ~fs:[ 1; 2 ] ())

let test_e5_quick () = assert_all_ok (Experiments.e5 ~fs:[ 1; 2 ] ())

let test_e6 () = assert_all_ok (Experiments.e6 ())

let test_e7 () = assert_all_ok (Experiments.e7 ())

let test_e8 () = assert_all_ok (Experiments.e8 ())

let test_e9 () = assert_all_ok (Experiments.e9 ())

let test_e10 () = assert_all_ok (Experiments.e10 ())

let test_e11 () = assert_all_ok (Experiments.e11 ())

let test_e12 () = assert_all_ok (Experiments.e12 ())

(* E12's mute-and-probe script under each timeout strategy, on links slower
   than the initial timeout. A non-adapting detector false-suspects on every
   expectation, so the membership never stabilizes and the probe cannot
   commit; both adaptive strategies grow past the real delay and recover. *)
let test_e12_strategies () =
  let ms = Qs_sim.Stime.of_ms in
  let run strategy =
    Qs_harness.E_recovery.xpaxos_recovery
      ~delay:(Qs_sim.Network.Fixed (ms 40))
      ~initial:(ms 25) strategy
  in
  check_bool "Fixed below the link delay never recovers" true
    (run Qs_fd.Timeout.Fixed = None);
  check_bool "Exponential recovers" true
    (run (Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 }) <> None);
  check_bool "Additive recovers" true
    (run (Qs_fd.Timeout.Additive { step = ms 5; max = ms 2000 }) <> None)

(* ------------------------------------------------------------------ *)
(* Heartbeat stack *)

module Heartbeat = Qs_harness.Heartbeat

let hb_config ~n ~f =
  {
    Heartbeat.n;
    f;
    heartbeat_period = Qs_sim.Stime.of_ms 50;
    initial_timeout = Qs_sim.Stime.of_ms 120;
    timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = Qs_sim.Stime.of_ms 2000 };
  }

let test_heartbeat_no_faults_stable () =
  let t = Heartbeat.create (hb_config ~n:5 ~f:2) in
  Heartbeat.run ~until:(Qs_sim.Stime.of_ms 2000) t;
  let all = [ 0; 1; 2; 3; 4 ] in
  check_int "no quorum changes without faults" 0 (Heartbeat.quorum_changes t ~correct:all);
  check_bool "default quorum everywhere" true
    (Heartbeat.agreed_quorum t ~correct:all = Some [ 0; 1; 2 ]);
  check_int "no false suspicions" 0 (Heartbeat.false_suspicion_total t ~correct:all)

let test_heartbeat_crash_detected_and_excluded () =
  let t = Heartbeat.create (hb_config ~n:5 ~f:2) in
  Heartbeat.crash t 1 (Qs_sim.Stime.of_ms 300);
  Heartbeat.run ~until:(Qs_sim.Stime.of_ms 3000) t;
  let correct = [ 0; 2; 3; 4 ] in
  (match Heartbeat.agreed_quorum t ~correct with
   | Some quorum -> check_bool "crashed excluded" false (List.mem 1 quorum)
   | None -> Alcotest.fail "no agreement");
  check_bool "converged" true
    (Heartbeat.convergence_time t ~correct ~expect_excluded:[ 1 ] <> None)

let test_heartbeat_link_omission_separates_pair () =
  let t = Heartbeat.create (hb_config ~n:5 ~f:2) in
  Heartbeat.omit_link t ~src:1 ~dst:0 ~from:(Qs_sim.Stime.of_ms 300);
  Heartbeat.run ~until:(Qs_sim.Stime.of_ms 3000) t;
  let all = [ 0; 1; 2; 3; 4 ] in
  match Heartbeat.agreed_quorum t ~correct:all with
  | Some quorum ->
    check_bool "suspicious pair separated" false (List.mem 0 quorum && List.mem 1 quorum)
  | None -> Alcotest.fail "no agreement"

let test_heartbeat_lemma1_propagation_timing () =
  (* Lemma 1 made operational: a suspicion raised at one correct process is
     in every correct process's matrix within one communication round. With
     1ms links, heartbeats every 50ms and a 120ms timeout, the crash at
     t=300ms is suspected at t=420ms (the round-300 expectation's deadline)
     and the final quorum is issued by t=422ms: deadline + send + forward. *)
  let t = Heartbeat.create (hb_config ~n:5 ~f:2) in
  (* Crash a member of the default quorum so a new quorum must be issued. *)
  Heartbeat.crash t 1 (Qs_sim.Stime.of_ms 300);
  Heartbeat.run ~until:(Qs_sim.Stime.of_ms 1000) t;
  let correct = [ 0; 2; 3; 4 ] in
  match Heartbeat.convergence_time t ~correct ~expect_excluded:[ 1 ] with
  | Some at ->
    check_bool "issued no earlier than the deadline" true (at >= Qs_sim.Stime.of_ms 420);
    check_bool "within one communication round of the deadline" true
      (at <= Qs_sim.Stime.of_ms 423)
  | None -> Alcotest.fail "no convergence"

let test_heartbeat_matrices_converge () =
  let t = Heartbeat.create (hb_config ~n:5 ~f:2) in
  Heartbeat.crash t 4 (Qs_sim.Stime.of_ms 200);
  Heartbeat.run ~until:(Qs_sim.Stime.of_ms 3000) t;
  check_bool "matrices equal" true (Heartbeat.matrices_agree t ~correct:[ 0; 1; 2; 3 ])

(* ------------------------------------------------------------------ *)
(* Leader attack driver *)

let test_leader_attack_bounds () =
  List.iter
    (fun f ->
      let r = Leader_attack.run ~n:((3 * f) + 1) ~f in
      check_bool
        (Printf.sprintf "f=%d per-epoch within 3f+1" f)
        true
        (r.Leader_attack.max_per_epoch <= (3 * f) + 1);
      check_bool
        (Printf.sprintf "f=%d total within 6f+2" f)
        true
        (r.Leader_attack.total_issued <= (6 * f) + 2);
      check_bool
        (Printf.sprintf "f=%d attack actually did something" f)
        true
        (r.Leader_attack.injections > 0))
    [ 1; 2; 3 ]

let test_leader_attack_linear_shape () =
  (* The O(f) claim: quorum changes grow linearly, not quadratically. *)
  let r1 = Leader_attack.run ~n:4 ~f:1 in
  let r3 = Leader_attack.run ~n:10 ~f:3 in
  let growth =
    float_of_int r3.Leader_attack.total_issued /. float_of_int (max 1 r1.Leader_attack.total_issued)
  in
  check_bool "roughly linear in f (x3 f -> less than x6 changes)" true (growth <= 6.0)

let test_leader_attack_requires_3f1 () =
  Alcotest.check_raises "n = 3f rejected" (Invalid_argument "Leader_attack.run: requires n > 3f")
    (fun () -> ignore (Leader_attack.run ~n:6 ~f:2))

(* ------------------------------------------------------------------ *)
(* Detector experiment internals *)

let test_detector_strategies_ordered () =
  let fixed = E_detector.run_one Qs_fd.Timeout.Fixed ~name:"fixed" in
  let expo =
    E_detector.run_one
      (Qs_fd.Timeout.Exponential { factor = 2.0; max = Qs_sim.Stime.of_ms 5000 })
      ~name:"expo"
  in
  check_bool "fixed false-suspects more than exponential overall" true
    (fixed.E_detector.false_post_gst > expo.E_detector.false_post_gst);
  check_int "exponential: silent after GST" 0 expo.E_detector.false_post_gst;
  check_bool "omitter suspected in nearly every round" true
    (expo.E_detector.omitter_suspected_rounds > 90);
  check_bool "timeout actually adapted" true
    (expo.E_detector.final_timeout > Qs_sim.Stime.of_ms 50)

(* ------------------------------------------------------------------ *)
(* Interleaving explorer: bounded model checking of Algorithm 1 *)

module Explore = Qs_harness.Explore

let test_explore_single_suspicion () =
  let r = Explore.check { Explore.n = 3; f = 1; injections = [ (0, [ 1 ]) ] } in
  check_int "no agreement violations" 0 r.Explore.agreement_violations;
  check_int "no convergence violations" 0 r.Explore.convergence_violations;
  (* Confluence: every interleaving reaches the same single quiescent
     state. Exact counts are pinned — exploration is deterministic. *)
  check_int "single quiescent state" 1 r.Explore.quiescent;
  check_int "states explored" 98 r.Explore.states

let test_explore_n4 () =
  let r = Explore.check { Explore.n = 4; f = 1; injections = [ (2, [ 3 ]) ] } in
  check_int "no violations" 0 (r.Explore.agreement_violations + r.Explore.convergence_violations);
  check_int "confluent" 1 r.Explore.quiescent;
  check_bool "hundreds of orderings covered" true (r.Explore.states > 500)

let test_explore_crossing_suspicions_slow () =
  (* Two processes suspecting each other: ~10k distinct interleavings. *)
  let r = Explore.check { Explore.n = 3; f = 1; injections = [ (0, [ 1 ]); (1, [ 0 ]) ] } in
  check_int "no violations" 0 (r.Explore.agreement_violations + r.Explore.convergence_violations);
  check_int "confluent" 1 r.Explore.quiescent

let test_explore_budget_guard () =
  Alcotest.check_raises "budget" (Failure "Explore.check: state budget exceeded") (fun () ->
      ignore
        (Explore.check ~max_states:10 { Explore.n = 3; f = 1; injections = [ (0, [ 1 ]) ] }))

(* ------------------------------------------------------------------ *)
(* Verdict helper *)

let test_verdict_helpers () =
  let vs = [ Verdict.make "a" true; Verdict.make "b" true ] in
  check_bool "all ok" true (Verdict.all_ok vs);
  check_bool "one fail" false (Verdict.all_ok (Verdict.make "c" false :: vs))

(* Shape check: E2's table mentions all requested f values. *)
let test_e2_table_shape () =
  let o = Experiments.e2 ~fs:[ 1; 2 ] () in
  let lines = String.split_on_char '\n' o.Experiments.rendered in
  let data_rows =
    List.filter
      (fun l -> String.length l > 2 && l.[0] = '|' && l.[2] <> 'f' && l.[1] = ' ')
      lines
  in
  check_int "one row per f" 2 (List.length data_rows)

let () =
  Alcotest.run "harness"
    [
      ( "experiments",
        [
          Alcotest.test_case "E1 fig4 verdicts" `Quick test_e1;
          Alcotest.test_case "E2 upper bound verdicts" `Quick test_e2_quick;
          Alcotest.test_case "E3 lower bound verdicts" `Quick test_e3_quick;
          Alcotest.test_case "E4 follower verdicts" `Quick test_e4_quick;
          Alcotest.test_case "E5 view changes verdicts" `Quick test_e5_quick;
          Alcotest.test_case "E6 messages verdicts" `Quick test_e6;
          Alcotest.test_case "E7 detector verdicts" `Quick test_e7;
          Alcotest.test_case "E8 flows verdicts" `Quick test_e8;
          Alcotest.test_case "E9 chain verdicts" `Quick test_e9;
          Alcotest.test_case "E10 stack verdicts" `Quick test_e10;
          Alcotest.test_case "E11 star verdicts" `Quick test_e11;
          Alcotest.test_case "E12 recovery verdicts" `Quick test_e12;
          Alcotest.test_case "E12 strategy ablation" `Quick test_e12_strategies;
          Alcotest.test_case "E2 table shape" `Quick test_e2_table_shape;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "stable without faults" `Quick test_heartbeat_no_faults_stable;
          Alcotest.test_case "crash excluded" `Quick test_heartbeat_crash_detected_and_excluded;
          Alcotest.test_case "link omission separates pair" `Quick
            test_heartbeat_link_omission_separates_pair;
          Alcotest.test_case "lemma 1 propagation timing" `Quick
            test_heartbeat_lemma1_propagation_timing;
          Alcotest.test_case "matrices converge" `Quick test_heartbeat_matrices_converge;
        ] );
      ( "leader-attack",
        [
          Alcotest.test_case "bounds" `Quick test_leader_attack_bounds;
          Alcotest.test_case "linear shape" `Quick test_leader_attack_linear_shape;
          Alcotest.test_case "model guard" `Quick test_leader_attack_requires_3f1;
        ] );
      ( "detector-experiment",
        [ Alcotest.test_case "strategy comparison" `Quick test_detector_strategies_ordered ] );
      ( "explore",
        [
          Alcotest.test_case "single suspicion, all orders" `Quick test_explore_single_suspicion;
          Alcotest.test_case "n=4, all orders" `Quick test_explore_n4;
          Alcotest.test_case "crossing suspicions, all orders" `Slow
            test_explore_crossing_suspicions_slow;
          Alcotest.test_case "budget guard" `Quick test_explore_budget_guard;
        ] );
      ("verdict", [ Alcotest.test_case "helpers" `Quick test_verdict_helpers ]);
    ]
