(* Model-checker tests: schedule round-trips, the engine's exploration /
   reduction / shrinking machinery on a toy system, exhaustion of real
   protocol instances with pinned state counts, the seeded-bug detection
   pipeline, the randomized walker, and the support fixes that ride along
   (Monitor.reset, Campaign.greedy_shrink, Fault.of_string). *)

module Engine = Qs_mc.Engine
module Schedule = Qs_mc.Schedule
module MC = Qs_harness.Modelcheck
module Monitor = Qs_faults.Monitor
module Campaign = Qs_faults.Campaign
module Fault = Qs_faults.Fault
module Journal = Qs_obs.Journal

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Schedule text format *)

let test_schedule_roundtrip () =
  let s =
    [ Schedule.Deliver 3; Schedule.Step; Schedule.Fire 1; Schedule.Amnesia 2; Schedule.Deliver 0 ]
  in
  check_string "render" "d3;t;f1;a2;d0" (Schedule.to_string s);
  check_bool "roundtrip" true (Schedule.of_string (Schedule.to_string s) = s);
  check_bool "empty" true (Schedule.of_string "" = []);
  check_bool "spaces tolerated" true (Schedule.of_string " d1 ; t " = [ Schedule.Deliver 1; Schedule.Step ])

let test_schedule_rejects_garbage () =
  List.iter
    (fun s ->
      match Schedule.of_string s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted %S" s)
    [ "x3"; "d"; "d-1"; "dd3"; "t3"; "d1;;d2"; "a"; "a-2" ]

(* ------------------------------------------------------------------ *)
(* Engine on a toy system: 3 commuting deliveries to distinct receivers *)

let toy ?(bug = false) ?(with_snapshot = false) () =
  let delivered = ref [] in
  let enabled () =
    List.filter_map
      (fun i ->
        if List.mem i !delivered then None
        else
          Some
            {
              Engine.choice = Schedule.Deliver i;
              canon = "m" ^ string_of_int i;
              receiver = Some i;
            })
      [ 0; 1; 2 ]
  in
  {
    Engine.reset = (fun () -> delivered := []);
    enabled;
    apply =
      (function
      | Schedule.Deliver i when i < 3 && not (List.mem i !delivered) ->
        delivered := i :: !delivered;
        true
      | _ -> false);
    fingerprint =
      (fun () -> String.concat "," (List.map string_of_int (List.sort compare !delivered)));
    violations =
      (fun () ->
        if bug && List.mem 0 !delivered && List.mem 1 !delivered then
          [ ("pair", "messages 0 and 1 both delivered") ]
        else []);
    quiescent_violations = (fun () -> []);
    symmetry = None;
    snapshot =
      (if with_snapshot then
         Some
           (fun () ->
             let saved = !delivered in
             fun () -> delivered := saved)
       else None);
  }

let test_toy_exhausts () =
  let r = Engine.explore ~depth:5 (toy ()) in
  check_bool "complete" true r.Engine.complete;
  check_int "visited = subsets of {0,1,2}" 8 r.Engine.visited;
  check_int "one quiescent state" 1 r.Engine.quiescent;
  check_int "no violations" 0 (List.length r.Engine.violations);
  check_int "no truncation" 0 r.Engine.truncated;
  check_bool "POR pruned something" true (r.Engine.sleep_pruned > 0)

let test_toy_snapshot_path_agrees () =
  let a = Engine.explore ~depth:5 (toy ()) in
  let b = Engine.explore ~depth:5 (toy ~with_snapshot:true ()) in
  check_int "visited agree" a.Engine.visited b.Engine.visited;
  check_int "quiescent agree" a.Engine.quiescent b.Engine.quiescent;
  check_int "transitions agree" a.Engine.transitions b.Engine.transitions

let test_toy_por_off_same_states () =
  let on = Engine.explore ~depth:5 (toy ()) in
  let off = Engine.explore ~por:false ~depth:5 (toy ()) in
  check_int "same state count without POR" on.Engine.visited off.Engine.visited;
  check_int "no sleep pruning without POR" 0 off.Engine.sleep_pruned;
  check_bool "POR executes fewer transitions" true (on.Engine.transitions <= off.Engine.transitions)

let test_toy_bug_found_and_shrunk () =
  let r = Engine.explore ~depth:5 (toy ~bug:true ()) in
  match r.Engine.violations with
  | [ v ] ->
    check_string "check name" "pair" v.Engine.check;
    check_int "shrunk to the two relevant deliveries" 2 (List.length v.Engine.schedule);
    let ids =
      List.sort compare
        (List.map (function Schedule.Deliver i -> i | _ -> -1) v.Engine.schedule)
    in
    check_bool "exactly {d0,d1}" true (ids = [ 0; 1 ]);
    (* The shrunk schedule replays to the same violation; dropping either
       choice loses it (local minimality). *)
    check_bool "replays" true
      (List.exists (fun (c, _) -> c = "pair") (Engine.replay (toy ~bug:true ()) v.Engine.schedule));
    List.iteri
      (fun i _ ->
        let shorter = List.filteri (fun j _ -> j <> i) v.Engine.schedule in
        check_bool "minimal" false
          (List.exists (fun (c, _) -> c = "pair") (Engine.replay (toy ~bug:true ()) shorter)))
      v.Engine.schedule
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_toy_replay_skips_unknown_ids () =
  let violated =
    Engine.replay (toy ~bug:true ()) [ Schedule.Deliver 9; Schedule.Deliver 0; Schedule.Deliver 1 ]
  in
  check_bool "unknown id skipped, violation still reached" true
    (List.exists (fun (c, _) -> c = "pair") violated);
  check_int "clean system, clean replay" 0
    (List.length (Engine.replay (toy ()) [ Schedule.Deliver 0; Schedule.Deliver 1 ]))

(* ------------------------------------------------------------------ *)
(* Real instances: exhaustion with pinned counts, determinism *)

(* n=3, f=1, p0 initially suspects p2: the UPDATE gossip fully drains within
   11 choices and every interleaving funnels into a single quiescent state —
   agreement and convergence made visible. The counts are deterministic;
   a change means the exploration (or the protocol) changed. *)
let quorum_n3_spec =
  { (MC.default_spec MC.Quorum) with MC.n = 3; injections = [ (0, [ 2 ]) ] }

let test_quorum_n3_exhausts () =
  let r = Engine.explore ~depth:12 (MC.make quorum_n3_spec) in
  check_bool "complete" true r.Engine.complete;
  check_int "visited" 1135 r.Engine.visited;
  check_int "revisit pruned" 1927 r.Engine.revisit_pruned;
  check_int "sleep pruned" 4862 r.Engine.sleep_pruned;
  check_int "single quiescent state" 1 r.Engine.quiescent;
  check_int "no violations" 0 (List.length r.Engine.violations)

let test_quorum_n4_bounded_stable () =
  let explore () = Engine.explore ~depth:4 (MC.make (MC.default_spec MC.Quorum)) in
  let a = explore () and b = explore () in
  check_int "visited pinned" 509 a.Engine.visited;
  check_int "deterministic visited" a.Engine.visited b.Engine.visited;
  check_int "deterministic transitions" a.Engine.transitions b.Engine.transitions;
  check_bool "bounded, not complete" false a.Engine.complete;
  check_int "no violations" 0 (List.length a.Engine.violations)

let test_follower_bounded_clean () =
  let r = Engine.explore ~depth:4 (MC.make (MC.default_spec MC.Follower)) in
  check_int "no violations" 0 (List.length r.Engine.violations);
  check_bool "explored something" true (r.Engine.visited > 100)

let test_xpaxos_bounded_clean () =
  let r = Engine.explore ~depth:4 (MC.make (MC.default_spec MC.Xpaxos)) in
  check_int "no violations" 0 (List.length r.Engine.violations);
  check_bool "explored something" true (r.Engine.visited > 50);
  check_bool "bounded" false r.Engine.complete

(* ------------------------------------------------------------------ *)
(* Amnesia crashes in the quorum instance *)

(* No gossip, just the crash: p1 loses its (empty) state, broadcasts
   State_req, and every interleaving of the two requests and two responses
   re-integrates it. Tiny by construction — the space is the rejoin
   machinery alone — and every terminal state passed the quiescent
   agreement/convergence checks with the recovered process included. *)
let amnesia_only_spec =
  { (MC.default_spec MC.Quorum) with MC.n = 3; injections = []; amnesia = [ 1 ] }

let test_amnesia_only_exhausts () =
  let r = Engine.explore ~depth:12 (MC.make amnesia_only_spec) in
  check_bool "complete" true r.Engine.complete;
  check_int "visited" 11 r.Engine.visited;
  check_int "quiescent states (req orderings funnel into two)" 2 r.Engine.quiescent;
  check_int "no violations" 0 (List.length r.Engine.violations);
  check_int "no truncation" 0 r.Engine.truncated

(* Recovery interleaved with live UPDATE gossip: p0's suspicion of p2 is
   in flight while p1 may crash at any explored point. Too big to exhaust
   here; a bounded sweep plus full-depth random walks (each walk runs to
   quiescence, so rejoins complete) keep it honest. *)
let amnesia_gossip_spec =
  { (MC.default_spec MC.Quorum) with MC.n = 3; injections = [ (0, [ 2 ]) ]; amnesia = [ 1 ] }

let test_amnesia_gossip_bounded_clean () =
  let r = Engine.explore ~depth:6 (MC.make amnesia_gossip_spec) in
  check_int "visited pinned" 2659 r.Engine.visited;
  check_bool "bounded, not complete" false r.Engine.complete;
  check_int "no violations" 0 (List.length r.Engine.violations)

let test_amnesia_gossip_walks_recover () =
  let r = Engine.random ~seed:4242 ~iters:50 (MC.make amnesia_gossip_spec) in
  check_int "every walk reaches quiescence" 50 r.Engine.quiescent;
  check_int "no violations" 0 (List.length r.Engine.violations)

let test_amnesia_spec_validation () =
  let reject name spec =
    match MC.make spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "accepted %s" name
  in
  reject "amnesia outside quorum"
    { (MC.default_spec MC.Follower) with MC.amnesia = [ 1 ] };
  reject "amnesia of a crashed process"
    { (MC.default_spec MC.Quorum) with MC.crashes = [ 2 ]; amnesia = [ 2 ] };
  reject "crash + amnesia over the f budget"
    { (MC.default_spec MC.Quorum) with MC.crashes = [ 2 ]; amnesia = [ 1 ] };
  reject "duplicate amnesia pid"
    { (MC.default_spec MC.Quorum) with MC.amnesia = [ 1; 1 ] };
  reject "amnesia pid out of range" { (MC.default_spec MC.Quorum) with MC.amnesia = [ 9 ] }

(* ------------------------------------------------------------------ *)
(* Seeded bug: find, shrink, replay *)

let seeded_spec = { (MC.default_spec MC.Quorum) with MC.seeded_bug = true }

let test_seeded_bug_found () =
  let r = Engine.explore ~depth:3 (MC.make seeded_spec) in
  Qs_core.Quorum_select.test_buggy_quorum_size := false;
  match List.find_opt (fun v -> v.Engine.check = "quorum-size") r.Engine.violations with
  | None -> Alcotest.fail "seeded quorum-size bug not found"
  | Some v ->
    (* A single delivery of the suspicion UPDATE already issues the
       undersized quorum, so the shrunk counterexample is one choice. *)
    check_int "shrunk to one choice" 1 (List.length v.Engine.schedule);
    let violated = Engine.replay (MC.make seeded_spec) v.Engine.schedule in
    Qs_core.Quorum_select.test_buggy_quorum_size := false;
    check_bool "replays deterministically" true
      (List.exists (fun (c, _) -> c = "quorum-size") violated);
    let clean = Engine.replay (MC.make (MC.default_spec MC.Quorum)) v.Engine.schedule in
    check_int "same schedule is clean without the bug" 0 (List.length clean)

(* ------------------------------------------------------------------ *)
(* Random walker *)

let test_random_deterministic () =
  let run () = Engine.random ~seed:99 ~iters:20 (MC.make quorum_n3_spec) in
  let a = run () and b = run () in
  check_int "same visited" a.Engine.visited b.Engine.visited;
  check_int "same transitions" a.Engine.transitions b.Engine.transitions;
  check_int "same quiescent" a.Engine.quiescent b.Engine.quiescent;
  check_int "clean walks" 0 (List.length a.Engine.violations);
  check_bool "walks reach quiescence" true (a.Engine.quiescent > 0)

let test_random_finds_seeded_bug () =
  let r = Engine.random ~seed:5 ~iters:20 (MC.make seeded_spec) in
  Qs_core.Quorum_select.test_buggy_quorum_size := false;
  check_bool "random mode finds the seeded bug" true
    (List.exists (fun v -> v.Engine.check = "quorum-size") r.Engine.violations)

(* ------------------------------------------------------------------ *)
(* Satellite fixes: Monitor.reset, greedy_shrink, Fault.of_string *)

let test_monitor_reset () =
  let was_live = Journal.live () in
  Journal.set_enabled true;
  Journal.clear ();
  let m =
    Monitor.create
      {
        Monitor.n = 4;
        f = 1;
        correct = [ 0; 1; 2; 3 ];
        quorum_bound = Some 2;
        bound_gauge = None;
        settle = Qs_sim.Stime.of_ms 50;
        rejoin_retry_bound = None;
      }
  in
  for _ = 1 to 3 do
    Journal.record (Journal.Quorum_issued { who = 0; epoch = 1; quorum = [ 0; 1; 2 ] })
  done;
  check_bool "bound violation observed" true (Monitor.violations m <> []);
  check_bool "checks counted" true (Monitor.checks_run m > 0);
  Monitor.reset m;
  check_bool "violations forgotten" true (Monitor.violations m = []);
  check_int "counters forgotten" 0 (Monitor.checks_run m);
  (* Still subscribed, and the per-epoch accounting restarts from zero:
     two more issues stay under the bound, a third trips it again. *)
  Journal.record (Journal.Quorum_issued { who = 0; epoch = 1; quorum = [ 0; 1; 2 ] });
  Journal.record (Journal.Quorum_issued { who = 0; epoch = 1; quorum = [ 0; 1; 3 ] });
  check_bool "accounting restarted (no leak from before reset)" true (Monitor.violations m = []);
  Journal.record (Journal.Quorum_issued { who = 0; epoch = 1; quorum = [ 0; 2; 3 ] });
  check_bool "still live after reset" true (Monitor.violations m <> []);
  Monitor.detach m;
  Journal.clear ();
  Journal.set_enabled was_live

let test_greedy_shrink () =
  let attempts = ref 0 in
  let minimal, steps =
    Campaign.greedy_shrink
      ~candidates:(fun xs -> List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs)
      ~still_fails:(fun xs ->
        incr attempts;
        List.mem 3 xs)
      [ 1; 2; 3; 4; 5 ]
  in
  check_bool "minimized to the failing core" true (minimal = [ 3 ]);
  check_int "steps = oracle calls" !attempts steps;
  (* Already-minimal input: no candidate helps, zero-cost identity. *)
  let m2, _ = Campaign.greedy_shrink ~candidates:(fun _ -> []) ~still_fails:(fun _ -> true) [ 7 ] in
  check_bool "fixpoint on minimal input" true (m2 = [ 7 ])

let test_fault_of_string_roundtrip () =
  let n = 5 in
  let schedules =
    [
      [];
      [ Fault.at (Fault.Crash 2) ];
      [ Fault.at ~start:120 ~stop:4000 (Fault.Omit { src = 0; dst = 3 }) ];
      [
        Fault.at (Fault.Delay { src = 1; dst = 2; by = 60_000 });
        Fault.at ~start:500 (Fault.Duplicate { src = 4; dst = 0; copies = 3 });
      ];
      [ Fault.at ~stop:2_000_000 (Fault.Partition [ 0; 1 ]) ];
    ]
  in
  List.iter
    (fun s ->
      let rendered = Fault.to_string s in
      let parsed = Fault.of_string ~n rendered in
      check_string ("roundtrip " ^ rendered) rendered (Fault.to_string parsed))
    schedules;
  (match Fault.of_string ~n "gibberish" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted gibberish");
  match Fault.of_string ~n "crash p9" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted out-of-range pid"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mc"
    [
      ( "schedule",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_schedule_rejects_garbage;
        ] );
      ( "engine",
        [
          Alcotest.test_case "toy exhausts" `Quick test_toy_exhausts;
          Alcotest.test_case "snapshot path agrees" `Quick test_toy_snapshot_path_agrees;
          Alcotest.test_case "por off, same states" `Quick test_toy_por_off_same_states;
          Alcotest.test_case "bug found and shrunk" `Quick test_toy_bug_found_and_shrunk;
          Alcotest.test_case "replay skips unknown ids" `Quick test_toy_replay_skips_unknown_ids;
        ] );
      ( "instances",
        [
          Alcotest.test_case "quorum n=3 exhausts" `Quick test_quorum_n3_exhausts;
          Alcotest.test_case "quorum n=4 stable counts" `Quick test_quorum_n4_bounded_stable;
          Alcotest.test_case "follower bounded clean" `Quick test_follower_bounded_clean;
          Alcotest.test_case "xpaxos bounded clean" `Quick test_xpaxos_bounded_clean;
        ] );
      ( "amnesia",
        [
          Alcotest.test_case "amnesia-only exhausts" `Quick test_amnesia_only_exhausts;
          Alcotest.test_case "gossip + crash bounded clean" `Quick test_amnesia_gossip_bounded_clean;
          Alcotest.test_case "walks recover" `Quick test_amnesia_gossip_walks_recover;
          Alcotest.test_case "spec validation" `Quick test_amnesia_spec_validation;
        ] );
      ( "seeded-bug",
        [
          Alcotest.test_case "found, shrunk, replayed" `Quick test_seeded_bug_found;
          Alcotest.test_case "random mode finds it" `Quick test_random_finds_seeded_bug;
        ] );
      ( "random",
        [ Alcotest.test_case "deterministic" `Quick test_random_deterministic ] );
      ( "satellites",
        [
          Alcotest.test_case "Monitor.reset" `Quick test_monitor_reset;
          Alcotest.test_case "greedy_shrink" `Quick test_greedy_shrink;
          Alcotest.test_case "Fault.of_string roundtrip" `Quick test_fault_of_string_roundtrip;
        ] );
    ]
