(* Membership plane: configs as pid⇄slot assignments, the per-process
   engine's action protocol, remap-vs-rebuild consistency of reconfigured
   selectors, and the end-to-end churn demo — a join, a voluntary leave and
   an evidence-driven ejection on every chaos stack with zero monitor
   violations. *)

module Stime = Qs_sim.Stime
module Auth = Qs_crypto.Auth
module QS = Qs_core.Quorum_select
module Matrix = Qs_core.Suspicion_matrix
module Mconfig = Qs_membership.Config
module Membership = Qs_membership.Membership
module Fault = Qs_faults.Fault
module Chaos = Qs_harness.Chaos
module Prng = Qs_stdx.Prng

let ms = Stime.of_ms

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_ints = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Config: ordered member sets and slot remaps *)

let test_config_bootstrap () =
  let c = Mconfig.bootstrap [ 4; 0; 2 ] in
  check_int "membership epoch 0" 0 (Mconfig.cepoch c);
  check_int "n" 3 (Mconfig.n c);
  check_ints "members sorted into slot order" [ 0; 2; 4 ] (Mconfig.members c);
  check_int "slot 2 holds pid 4" 4 (Mconfig.pid_of_slot c 2);
  Alcotest.(check (option int)) "pid 2 sits in slot 1" (Some 1) (Mconfig.slot_of_pid c 2);
  Alcotest.(check (option int)) "non-member has no slot" None (Mconfig.slot_of_pid c 3);
  check_bool "rejects duplicates" true
    (match Mconfig.bootstrap [ 1; 1 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_config_apply () =
  let c0 = Mconfig.bootstrap [ 0; 1; 2 ] in
  let c1 = Mconfig.apply c0 (Mconfig.Join 5) in
  check_int "join bumps the epoch" 1 (Mconfig.cepoch c1);
  check_ints "joiner slotted in pid order" [ 0; 1; 2; 5 ] (Mconfig.members c1);
  let c2 = Mconfig.apply c1 (Mconfig.Leave 1) in
  check_ints "leave compacts the slots" [ 0; 2; 5 ] (Mconfig.members c2);
  check_bool "leave and eject agree on the member set" true
    (Mconfig.equal c2 (Mconfig.apply c1 (Mconfig.Eject 1)));
  check_bool "fingerprints separate the epochs" true
    (Mconfig.fingerprint c1 <> Mconfig.fingerprint c2);
  check_bool "rejects joining a member" true
    (match Mconfig.apply c0 (Mconfig.Join 1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "rejects removing a non-member" true
    (match Mconfig.apply c0 (Mconfig.Leave 7) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_config_of_new () =
  (* Grow: {0,2,4} + 3 → {0,2,3,4}. New slots 0,1,3 carry old 0,1,2; new
     slot 2 (pid 3) is fresh. *)
  let old = Mconfig.bootstrap [ 0; 2; 4 ] in
  let fresh = Mconfig.apply old (Mconfig.Join 3) in
  check_ints "grow remap" [ 0; 1; -1; 2 ]
    (List.init 4 (Mconfig.of_new ~old ~fresh));
  (* Compact: {0,2,3,4} - 2 → {0,3,4}: new slots carry old 0,2,3. *)
  let old = fresh in
  let fresh = Mconfig.apply old (Mconfig.Leave 2) in
  check_ints "compacting remap" [ 0; 2; 3 ]
    (List.init 3 (Mconfig.of_new ~old ~fresh))

(* ------------------------------------------------------------------ *)
(* Engine: the action protocol and the floor *)

let test_membership_actions () =
  let init = Mconfig.bootstrap [ 0; 1; 2; 3; 4 ] in
  let member = Membership.create ~me:0 ~f:1 init in
  let joiner = Membership.create ~me:7 ~f:1 init in
  check_bool "spare starts inactive" false (Membership.active joiner);
  (match Membership.handle_change joiner (Mconfig.Join 7) with
  | Membership.Admit -> ()
  | _ -> Alcotest.fail "joiner must be admitted");
  check_bool "joiner now active" true (Membership.active joiner);
  (match Membership.handle_change member (Mconfig.Join 7) with
  | Membership.Remap { of_new; me } ->
    check_int "member keeps slot 0" 0 me;
    check_int "fresh slot for the joiner" (-1) (of_new 5)
  | _ -> Alcotest.fail "member must remap");
  (match Membership.handle_change member (Mconfig.Leave 0) with
  | Membership.Depart -> ()
  | _ -> Alcotest.fail "leaver must depart");
  (match Membership.handle_change joiner (Mconfig.Eject 1) with
  | Membership.Remap { me; _ } ->
    (* The joiner's view never saw the leave: members {0,2,3,4,7}, so
       pid 7 still holds the top slot after the compaction. *)
    check_int "slots compact after the ejection" 4 me
  | _ -> Alcotest.fail "surviving member must remap");
  (match Membership.handle_change member (Mconfig.Leave 2) with
  | Membership.Observe -> ()
  | _ -> Alcotest.fail "departed process only observes");
  check_ints "log keeps the change epochs" [ 1; 2; 3 ]
    (List.map fst (Membership.log member))

let test_membership_floor () =
  let init = Mconfig.bootstrap [ 0; 1; 2; 3 ] in
  let m = Membership.create ~me:0 ~f:1 init in
  check_int "default floor is 2f+1" 3 (Membership.min_n m);
  check_bool "leave above the floor validates" true
    (Membership.validate m (Mconfig.Leave 3) = Ok ());
  ignore (Membership.handle_change m (Mconfig.Leave 3) : Membership.action);
  check_bool "leave at the floor is refused" true
    (match Membership.validate m (Mconfig.Leave 2) with Error _ -> true | Ok () -> false);
  check_bool "join of a member is refused" true
    (match Membership.validate m (Mconfig.Join 1) with Error _ -> true | Ok () -> false);
  check_bool "eject of a non-member is refused" true
    (match Membership.validate m (Mconfig.Eject 9) with Error _ -> true | Ok () -> false)

let test_membership_snapshot () =
  let init = Mconfig.bootstrap [ 0; 1; 2; 3; 4 ] in
  let m = Membership.create ~me:0 ~f:1 init in
  ignore (Membership.handle_change m (Mconfig.Join 6) : Membership.action);
  let snap = Membership.snapshot m in
  let fp = Membership.fingerprint m in
  ignore (Membership.handle_change m (Mconfig.Leave 6) : Membership.action);
  ignore (Membership.handle_change m (Mconfig.Leave 4) : Membership.action);
  check_bool "changes move the fingerprint" true (Membership.fingerprint m <> fp);
  Membership.restore m snap;
  Alcotest.(check string) "restore rewinds config and log" fp (Membership.fingerprint m)

(* ------------------------------------------------------------------ *)
(* Remap vs rebuild: a reconfigured selector is indistinguishable from one
   built from scratch on the same configuration *)

(* Drive one selector (process 0, slot 0 in every config since its pid
   sorts first) through [changes]; after every reconfiguration, rebuild a
   fresh selector over the final config, replay the surviving suspicions,
   and demand the same matrix and the same quorum. *)
let run_remap_vs_rebuild ~universe ~f ~suspects changes =
  let auth = Auth.create universe in
  let n0 = (2 * f) + 3 in
  let init = Mconfig.bootstrap (List.init n0 Fun.id) in
  let mem = Membership.create ~me:0 ~f init in
  let mk cfg =
    QS.create cfg ~me:0 ~auth ~send:(fun _ -> ()) ~on_quorum:(fun _ -> ()) ()
  in
  let sel = mk { QS.n = n0; f } in
  QS.handle_suspected sel suspects;
  List.for_all
    (fun change ->
      match Membership.validate mem change with
      | Error _ -> true (* refused changes must leave the state alone *)
      | Ok () ->
        (match Membership.handle_change mem change with
        | Membership.Remap { of_new; me } ->
          let cfg = Membership.config mem in
          QS.reconfigure sel (Membership.qs_config mem) ~me
            ~cepoch:(Mconfig.cepoch cfg) ~of_new
        | Membership.Admit | Membership.Depart | Membership.Observe ->
          invalid_arg "process 0 must stay a member");
        let cfg = Membership.config mem in
        let surviving = List.filter_map (Mconfig.slot_of_pid cfg) suspects in
        let fresh = mk (Membership.qs_config mem) in
        QS.handle_suspected fresh surviving;
        Matrix.equal (QS.matrix sel) (QS.matrix fresh)
        && QS.last_quorum sel = QS.last_quorum fresh
        && QS.cepoch sel = Mconfig.cepoch cfg)
    changes

let test_remap_vs_rebuild () =
  (* f=2, Π₀={0..6}; suspects 1,2. Join two spares, lose a suspect to an
     ejection, lose a bystander to a leave, readmit a departed pid. *)
  check_bool "deterministic churn sequence stays consistent" true
    (run_remap_vs_rebuild ~universe:12 ~f:2 ~suspects:[ 1; 2 ]
       [
         Mconfig.Join 7;
         Mconfig.Leave 5;
         Mconfig.Eject 1;
         Mconfig.Join 8;
         Mconfig.Leave 6;
         Mconfig.Join 5;
       ])

let prop_remap_vs_rebuild =
  QCheck.Test.make ~name:"random churn keeps remap = rebuild" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let universe = 11 in
      let f = 2 in
      (* Random walk over the change vocabulary; invalid proposals are
         refused by [validate] and skipped, which is itself under test. *)
      let changes =
        List.init 14 (fun _ ->
            let p = 1 + Prng.int rng (universe - 1) in
            match Prng.int rng 3 with
            | 0 -> Mconfig.Join p
            | 1 -> Mconfig.Leave p
            | _ -> Mconfig.Eject p)
      in
      run_remap_vs_rebuild ~universe ~f ~suspects:[ 1; 2 ] changes)

(* ------------------------------------------------------------------ *)
(* The churn demo: join + leave + evidence-driven ejection on every stack *)

(* The [quorum-join-leave.sched] shape at n=10 f=3 (floor 7 admits all
   three config changes): the spare joins at t=0, the initial leader
   leaves at t=0 — before its first proposal, so the detectors raise a
   suspicion wave while requests are pending — and p1 equivocates
   destination-specific row variants inside that wave, which the evidence
   stores convict into the ejecting config change. Blamed =
   {0, 1, spare} ≤ f, in-model: the monitor enforces the full invariant
   set, cross-epoch checks included. MinBFT runs at its own churn sizing
   (n = 9, f = 4 — the USIG universe is pinned at n = 2f+1). *)
let churn_demo_schedule ~spare =
  [
    Fault.at (Fault.Join spare);
    Fault.at ~start:(ms 1) (Fault.Equivocate { src = 1; scope = [ 2; 3 ] });
    Fault.at (Fault.Leave 0);
  ]

let run_churn_demo stack =
  let params =
    match stack with
    | Chaos.Minbft -> Chaos.churn_params stack
    | _ -> { (Chaos.churn_params stack) with Chaos.n = 10; f = 3; spares = [ 9 ] }
  in
  let spare = List.hd params.Chaos.spares in
  let churn_demo_schedule = churn_demo_schedule ~spare in
  let model = Fault.classify ~n:params.Chaos.n ~f:params.Chaos.f churn_demo_schedule in
  (match model with
  | Fault.In_model _ -> ()
  | Fault.Out_of_model why -> Alcotest.fail ("demo schedule out of model: " ^ why));
  let outcome, stores =
    Chaos.execute_with_evidence stack ~params ~seed:13 ~model churn_demo_schedule
  in
  let name = Chaos.name stack in
  check_int (name ^ ": zero monitor violations") 0
    (List.length outcome.Qs_faults.Campaign.violations);
  check_bool (name ^ ": liveness obligations met") true
    (outcome.Qs_faults.Campaign.liveness = []);
  check_bool (name ^ ": the equivocation was convicted") true
    (outcome.Qs_faults.Campaign.proofs >= 1);
  (* Join (10 members) + leave (9) + ejection (8): losing any one config
     change drops the count below the floor. *)
  check_bool (name ^ ": all three config changes reconfigured")
    true
    (outcome.Qs_faults.Campaign.reconfigs >= 20);
  (* Only the equivocator may end up proof-excluded anywhere. *)
  Array.iteri
    (fun holder store ->
      List.iter
        (fun culprit ->
          check_int
            (Printf.sprintf "%s: store %d excludes only the equivocator" name holder)
            1 culprit)
        (Qs_evidence.Evidence.excluded store))
    stores

let test_churn_demo_xpaxos () = run_churn_demo Chaos.Xpaxos_qs

let test_churn_demo_pbft () = run_churn_demo Chaos.Pbft

let test_churn_demo_minbft () = run_churn_demo Chaos.Minbft

let test_churn_demo_chain () = run_churn_demo Chaos.Chain

let test_churn_demo_star () = run_churn_demo Chaos.Star

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "membership"
    [
      ( "config",
        [
          Alcotest.test_case "bootstrap" `Quick test_config_bootstrap;
          Alcotest.test_case "apply" `Quick test_config_apply;
          Alcotest.test_case "of_new" `Quick test_config_of_new;
        ] );
      ( "engine",
        [
          Alcotest.test_case "actions" `Quick test_membership_actions;
          Alcotest.test_case "floor" `Quick test_membership_floor;
          Alcotest.test_case "snapshot" `Quick test_membership_snapshot;
        ] );
      ( "remap",
        [
          Alcotest.test_case "deterministic sequence" `Quick test_remap_vs_rebuild;
          QCheck_alcotest.to_alcotest prop_remap_vs_rebuild;
        ] );
      ( "churn-demo",
        [
          Alcotest.test_case "xpaxos-qs" `Slow test_churn_demo_xpaxos;
          Alcotest.test_case "pbft" `Slow test_churn_demo_pbft;
          Alcotest.test_case "minbft" `Slow test_churn_demo_minbft;
          Alcotest.test_case "chain" `Slow test_churn_demo_chain;
          Alcotest.test_case "star" `Slow test_churn_demo_star;
        ] );
    ]
