(* Tests for the observability layer: the metrics registry, the mini JSON
   codec, the event journal, and an integration check that the live
   per-epoch quorum counter respects the Theorem-3 bound under the
   Theorem-4 adversary. *)

open Qs_obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Counters, gauges, histograms *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter ~m "requests_total" in
  check_int "starts at zero" 0 (Metrics.counter_value c);
  Metrics.inc c;
  Metrics.inc ~by:5 c;
  check_int "accumulates" 6 (Metrics.counter_value c);
  Alcotest.check_raises "monotonic" (Invalid_argument "Metrics.inc: counters are monotonic")
    (fun () -> Metrics.inc ~by:(-1) c)

let test_counter_reacquire () =
  let m = Metrics.create () in
  Metrics.inc_c ~m "hits";
  Metrics.inc_c ~m "hits";
  (* Re-acquiring the same series returns the same cell. *)
  check_int "same cell" 2 (Metrics.counter_value (Metrics.counter ~m "hits"));
  check_int "find sees it" 2 (Option.get (Metrics.find_counter ~m "hits"))

let test_label_order_irrelevant () =
  let m = Metrics.create () in
  Metrics.inc_c ~m ~labels:[ ("a", "1"); ("b", "2") ] "x";
  Metrics.inc_c ~m ~labels:[ ("b", "2"); ("a", "1") ] "x";
  check_int "permuted labels address one series" 2
    (Option.get (Metrics.find_counter ~m ~labels:[ ("a", "1"); ("b", "2") ] "x"));
  check_bool "different labels are a different series" true
    (Metrics.find_counter ~m ~labels:[ ("a", "1") ] "x" = None)

let test_kind_conflict () =
  let m = Metrics.create () in
  ignore (Metrics.counter ~m "amount");
  Alcotest.check_raises "kind is sticky per name"
    (Invalid_argument "Metrics: amount already registered as a counter") (fun () ->
      ignore (Metrics.gauge ~m "amount"))

let test_gauge_set_max () =
  let m = Metrics.create () in
  let g = Metrics.gauge ~m "watermark" in
  Metrics.set g 3.0;
  Metrics.set_max g 1.0;
  check_bool "set_max keeps the max" true (Metrics.gauge_value g = 3.0);
  Metrics.set_max g 7.5;
  check_bool "set_max raises the max" true (Metrics.gauge_value g = 7.5);
  Metrics.set g 1.0;
  check_bool "set overwrites" true (Metrics.gauge_value g = 1.0)

let test_histogram_semantics () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~m "latency" in
  List.iter (fun v -> Metrics.observe h (float_of_int v)) [ 10; 20; 30; 40; 100 ];
  check_int "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (list (float 1e-9)))
    "samples in observation order"
    [ 10.; 20.; 30.; 40.; 100. ]
    (Metrics.histogram_samples h);
  match Metrics.snapshot ~m () with
  | [ { value = Metrics.Histogram { count; summary = Some s }; _ } ] ->
    check_int "snapshot count" 5 count;
    check_bool "mean" true (s.Qs_stdx.Stats.mean = 40.0);
    check_bool "median" true (s.Qs_stdx.Stats.median = 30.0);
    check_bool "max" true (s.Qs_stdx.Stats.max = 100.0)
  | _ -> Alcotest.fail "expected one histogram point"

let test_reset_keeps_handles () =
  let m = Metrics.create () in
  let c = Metrics.counter ~m "n" in
  let g = Metrics.gauge ~m "g" in
  let h = Metrics.histogram ~m "h" in
  Metrics.inc c;
  Metrics.set g 9.0;
  Metrics.observe h 1.0;
  Metrics.reset ~m ();
  check_int "counter zeroed" 0 (Metrics.counter_value c);
  check_bool "gauge zeroed" true (Metrics.gauge_value g = 0.0);
  check_int "histogram emptied" 0 (Metrics.histogram_count h);
  Metrics.inc c;
  check_int "handle still live after reset" 1 (Metrics.counter_value c);
  check_int "registry still sees the series" 1 (Option.get (Metrics.find_counter ~m "n"))

let test_snapshot_deterministic () =
  let m = Metrics.create () in
  Metrics.inc_c ~m ~labels:[ ("p", "1") ] "b_total";
  Metrics.inc_c ~m ~labels:[ ("p", "0") ] "b_total";
  Metrics.set_g ~m "a_gauge" 2.0;
  let names =
    List.map
      (fun p ->
        p.Metrics.name
        ^ String.concat "" (List.map (fun (k, v) -> k ^ v) p.Metrics.labels))
      (Metrics.snapshot ~m ())
  in
  Alcotest.(check (list string))
    "sorted by name then labels"
    [ "a_gauge"; "b_totalp0"; "b_totalp1" ]
    names;
  check_bool "two snapshots agree" true (Metrics.snapshot ~m () = Metrics.snapshot ~m ())

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_render_text () =
  let m = Metrics.create () in
  Metrics.inc_c ~m ~labels:[ ("p", "0") ] "sent_total";
  let text = Metrics.render_text (Metrics.snapshot ~m ()) in
  check_bool "series id rendered" true (contains ~sub:"sent_total{p=0}" text)

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("big", Json.Int max_int);
        ("floats", Json.List [ Json.Float 0.1; Json.Float 3.0; Json.Float 1e-9 ]);
        ("text", Json.String "line\n\ttab \"quoted\" back\\slash");
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  check_bool "compact round-trips" true (Json.parse_exn (Json.render doc) = doc);
  check_bool "pretty round-trips" true (Json.parse_exn (Json.render_pretty doc) = doc)

let test_json_parse_escapes () =
  check_bool "unicode escape decodes to UTF-8" true
    (Json.parse_exn "\"\\u00e9A\"" = Json.String "\xc3\xa9A");
  check_bool "number classification" true
    (Json.parse_exn "[1, 1.5, -3, 2e3]"
    = Json.List [ Json.Int 1; Json.Float 1.5; Json.Int (-3); Json.Float 2000.0 ])

let test_json_parse_errors () =
  check_bool "trailing garbage rejected" true (Result.is_error (Json.parse "{} x"));
  check_bool "unterminated string rejected" true (Result.is_error (Json.parse "\"abc"));
  check_bool "bare word rejected" true (Result.is_error (Json.parse "nope"))

let test_metrics_json_roundtrip () =
  let m = Metrics.create () in
  Metrics.inc_c ~m ~labels:[ ("p", "0") ] "qs_quorums_issued_total";
  Metrics.set_g ~m ~labels:[ ("f", "2") ] "qs_bound_theorem3" 6.0;
  Metrics.observe_h ~m "net_delivery_latency_ms" 12.5;
  Metrics.observe_h ~m "net_delivery_latency_ms" 25.0;
  let snap = Metrics.snapshot ~m () in
  let json = Metrics.to_json snap in
  (* The rendered JSON parses back to the same tree... *)
  check_bool "render/parse round-trip" true (Json.parse_exn (Json.render json) = json);
  (* ...and the parsed tree carries the same values. *)
  match Json.parse_exn (Json.render json) with
  | Json.List points ->
    check_int "three series" 3 (List.length points);
    let by_name name =
      List.find
        (fun p -> Json.member "name" p = Some (Json.String name))
        points
    in
    check_int "counter value survives" 1
      (Json.to_int_exn (Option.get (Json.member "value" (by_name "qs_quorums_issued_total"))));
    check_bool "gauge value survives" true
      (Json.to_float_exn (Option.get (Json.member "value" (by_name "qs_bound_theorem3")))
      = 6.0);
    check_int "histogram count survives" 2
      (Json.to_int_exn
         (Option.get (Json.member "count" (by_name "net_delivery_latency_ms"))))
  | _ -> Alcotest.fail "expected a JSON list"

(* ------------------------------------------------------------------ *)
(* Journal *)

let test_journal_disabled_is_noop () =
  let j = Journal.create () in
  Journal.record ~j (Journal.Custom "ignored");
  check_int "disabled journal records nothing" 0 (Journal.length ~j ())

let test_journal_records_in_order () =
  let j = Journal.create () in
  Journal.set_enabled ~j true;
  Journal.record ~j ~at:1.0 (Journal.Net_sent { src = 0; dst = 1 });
  Journal.record ~j ~at:2.0 (Journal.Quorum_issued { who = 0; epoch = 1; quorum = [ 0; 1 ] });
  Journal.record ~j ~at:3.0 (Journal.Suspicion_raised { who = 1; suspect = 2 });
  let es = Journal.entries ~j () in
  check_int "three entries" 3 (List.length es);
  Alcotest.(check (list int)) "sequence numbers" [ 0; 1; 2 ]
    (List.map (fun e -> e.Journal.seq) es);
  check_string "renders the quorum"
    "quorum-issued p0 epoch=1 quorum={0,1}"
    (Journal.event_to_string (List.nth es 1).Journal.event)

let test_journal_capacity_ring () =
  let j = Journal.create ~capacity:3 () in
  Journal.set_enabled ~j true;
  for i = 0 to 9 do
    Journal.record ~j (Journal.Commit { who = 0; slot = i })
  done;
  check_int "bounded" 3 (Journal.length ~j ());
  check_int "drops counted" 7 (Journal.dropped ~j ());
  Alcotest.(check (list int)) "oldest evicted first" [ 7; 8; 9 ]
    (List.map
       (fun e ->
         match e.Journal.event with Journal.Commit { slot; _ } -> slot | _ -> -1)
       (Journal.entries ~j ()));
  Journal.clear ~j ();
  check_int "clear empties" 0 (Journal.length ~j ());
  check_int "clear resets drops" 0 (Journal.dropped ~j ())

let test_journal_json () =
  let j = Journal.create () in
  Journal.set_enabled ~j true;
  Journal.record ~j ~at:1.5 (Journal.View_change { who = 2; view = 3; group = [ 0; 2 ] });
  match Json.member "events" (Journal.to_json ~j ()) with
  | Some (Json.List [ e ]) ->
    check_bool "event tag" true (Json.member "event" e = Some (Json.String "view_change"));
    check_bool "timestamp" true (Json.member "at_ms" e = Some (Json.Float 1.5))
  | _ -> Alcotest.fail "expected one journal event"

(* ------------------------------------------------------------------ *)
(* Integration: live protocol runs feed the default registry *)

(* The Theorem-4 adversary replayed against the live gossip cluster: the
   per-epoch quorum counter at every process must respect the Theorem-3
   bound f(f+1) — and, per the Section VI-B conjecture, even C(f+2,2). *)
let test_theorem3_bound_live () =
  List.iter
    (fun f ->
      Metrics.reset ();
      let n = (2 * f) + 2 in
      let setup = Qs_adversary.Theorem4.default_setup ~n ~f in
      let game = Qs_adversary.Theorem4.greedy setup in
      let issued = Qs_adversary.Theorem4.replay setup game in
      check_bool "adversary forced at least one quorum" true (issued > 0);
      let bound = f * (f + 1) in
      let conjecture = (f + 2) * (f + 1) / 2 in
      for p = 0 to n - 1 do
        match
          Metrics.find_gauge ~labels:[ ("p", string_of_int p) ]
            "qs_quorums_per_epoch_max"
        with
        | None -> Alcotest.fail "per-epoch gauge missing"
        | Some max_per_epoch ->
          check_bool
            (Printf.sprintf "f=%d p=%d: per-epoch quorums %.0f within f(f+1)=%d" f p
               max_per_epoch bound)
            true
            (int_of_float max_per_epoch <= bound);
          check_bool
            (Printf.sprintf "f=%d p=%d: within conjectured C(f+2,2)=%d" f p conjecture)
            true
            (int_of_float max_per_epoch <= conjecture)
      done;
      (* The published bound gauges match the formulas. *)
      check_bool "theorem3 gauge" true
        (Metrics.find_gauge ~labels:[ ("f", string_of_int f) ] "qs_bound_theorem3"
        = Some (float_of_int bound)))
    [ 1; 2; 3 ]

(* A full XPaxos run under a mute leader: commits, view changes, detector
   suspicions and network traffic all appear in one snapshot, and the
   journal captures the typed event stream. *)
let test_xpaxos_snapshot_and_journal () =
  Metrics.reset ();
  Journal.clear ();
  Journal.set_enabled true;
  let ms = Qs_sim.Stime.of_ms in
  let config =
    {
      Qs_xpaxos.Replica.n = 5;
      f = 2;
      mode = Qs_xpaxos.Replica.Quorum_selection;
      initial_timeout = ms 25;
      timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
    }
  in
  let c = Qs_xpaxos.Xcluster.create ~seed:7L config in
  Qs_xpaxos.Xcluster.set_fault c 0 Qs_xpaxos.Replica.Mute;
  let rs =
    List.map
      (Qs_xpaxos.Xcluster.submit c ~resubmit_every:(ms 100))
      [ "a"; "b"; "c" ]
  in
  Qs_xpaxos.Xcluster.run ~until:(ms 5000) c;
  Journal.set_enabled false;
  check_bool "requests committed" true
    (List.for_all (Qs_xpaxos.Xcluster.is_globally_committed c) rs);
  let total name =
    List.fold_left
      (fun acc p ->
        acc
        + Option.value ~default:0
            (Metrics.find_counter ~labels:[ ("p", string_of_int p) ] name))
      0
      [ 0; 1; 2; 3; 4 ]
  in
  check_bool "commits counted" true (total "xp_commits_total" > 0);
  check_bool "view changes counted" true (total "xp_view_changes_total" > 0);
  check_bool "suspicions counted" true (total "fd_suspicions_total" > 0);
  check_bool "network counted" true
    (Option.value ~default:0 (Metrics.find_counter "net_sent_total") > 0);
  let events = List.map (fun e -> e.Journal.event) (Journal.entries ()) in
  let has pred = List.exists pred events in
  check_bool "journal saw sends" true
    (has (function Journal.Net_sent _ -> true | _ -> false));
  check_bool "journal saw suspicions" true
    (has (function Journal.Suspicion_raised _ -> true | _ -> false));
  check_bool "journal saw view changes" true
    (has (function Journal.View_change _ -> true | _ -> false));
  check_bool "journal saw commits" true
    (has (function Journal.Commit _ -> true | _ -> false));
  check_bool "journal timestamps are monotone" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.Journal.at <= b.Journal.at && mono rest
       | _ -> true
     in
     mono (Journal.entries ()))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter reacquire" `Quick test_counter_reacquire;
          Alcotest.test_case "label order" `Quick test_label_order_irrelevant;
          Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
          Alcotest.test_case "gauge set/set_max" `Quick test_gauge_set_max;
          Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
          Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
          Alcotest.test_case "snapshot deterministic" `Quick test_snapshot_deterministic;
          Alcotest.test_case "render text" `Quick test_render_text;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "metrics roundtrip" `Quick test_metrics_json_roundtrip;
        ] );
      ( "journal",
        [
          Alcotest.test_case "disabled noop" `Quick test_journal_disabled_is_noop;
          Alcotest.test_case "ordered entries" `Quick test_journal_records_in_order;
          Alcotest.test_case "capacity ring" `Quick test_journal_capacity_ring;
          Alcotest.test_case "json" `Quick test_journal_json;
        ] );
      ( "integration",
        [
          Alcotest.test_case "theorem-3 bound on live counters" `Quick
            test_theorem3_bound_live;
          Alcotest.test_case "xpaxos snapshot + journal" `Quick
            test_xpaxos_snapshot_and_journal;
        ] );
    ]
