(* Selection policies, failure-correlation topologies, quorum-intersection
   checking and the correlated fault kinds (PR 9): unit pins for the
   documented shapes plus QCheck properties for the contracts the design
   leans on — policy determinism (which carries Agreement), the
   DiversityCapped per-label caps, blame-once budgeting, and the fault
   DSL's render/parse inverse. *)

open Qs_core
module Policy = Selection_policy
module Intersection = Quorum_intersection
module Graph = Qs_graph.Graph
module Indep = Qs_graph.Indep
module Fault = Qs_faults.Fault
module Prng = Qs_stdx.Prng
module Stime = Qs_sim.Stime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ilist = Alcotest.(check (list int))
let check_slist = Alcotest.(check (list string))

let ms = Stime.of_ms

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_topology_blocks () =
  let t = Topology.blocks ~n:9 [ "r0"; "r1"; "r2"; "r3"; "r4" ] in
  check_slist "labels in order" [ "r0"; "r1"; "r2"; "r3"; "r4" ] (Topology.labels t);
  check_ilist "first block" [ 0; 1 ] (Topology.members t "r0");
  check_ilist "last (short) block" [ 8 ] (Topology.members t "r4");
  Alcotest.(check (list (pair string int)))
    "counts 2,2,2,2,1"
    [ ("r0", 2); ("r1", 2); ("r2", 2); ("r3", 2); ("r4", 1) ]
    (Topology.counts t)

let test_topology_round_robin () =
  let t = Topology.round_robin ~n:5 [ "a"; "b" ] in
  check_ilist "interleaved a" [ 0; 2; 4 ] (Topology.members t "a");
  check_ilist "interleaved b" [ 1; 3 ] (Topology.members t "b")

let test_topology_string_roundtrip () =
  let t = Topology.blocks ~n:7 [ "zone-a"; "zone-b"; "zone-c" ] in
  check_bool "of_string inverts to_string" true
    (Topology.equal t (Topology.of_string (Topology.to_string t)))

let test_topology_remap_fresh_slot () =
  (* Identity remap is a fixpoint; a fresh slot lands in the
     least-populated label (deterministic successor rule). *)
  let t = Topology.of_list [ "a"; "a"; "b" ] in
  check_bool "identity remap" true
    (Topology.equal t (Topology.remap t ~n:3 ~of_new:Fun.id));
  let grown =
    Topology.remap t ~n:4 ~of_new:(fun i -> if i < 3 then i else -1)
  in
  Alcotest.(check string) "fresh slot balances" "b" (Topology.label_of grown 3)

(* ------------------------------------------------------------------ *)
(* Selection policies *)

let n9 = 9

let q9 = 5 (* q = n - f with f = 4 *)

let topo9 () = Topology.blocks ~n:n9 [ "r0"; "r1"; "r2"; "r3"; "r4" ]

let no_weight _ = 0

let select pol g =
  Policy.select pol ~graph:g ~q:q9 ~weight:no_weight ~cepoch:0 ~epoch:0

let test_lex_is_prefix_on_edgeless () =
  check_ilist "lex takes the low-pid prefix" [ 0; 1; 2; 3; 4 ]
    (Option.get (select Policy.Lex_first (Graph.create n9)))

let test_diverse_spreads_on_edgeless () =
  let pol = Policy.Diversity_capped { topology = topo9 (); cap = 1 } in
  check_ilist "one seat per region" [ 0; 2; 4; 6; 8 ]
    (Option.get (select pol (Graph.create n9)))

let test_diverse_validate_rejects_nonsense () =
  let narrow = Topology.blocks ~n:4 [ "a"; "b" ] in
  Alcotest.check_raises "wrong width"
    (Invalid_argument
       "Selection_policy: topology width does not match the configuration")
    (fun () ->
      Policy.validate
        (Policy.Diversity_capped { topology = narrow; cap = 1 })
        ~n:n9 ~q:q9);
  let two = Topology.blocks ~n:n9 [ "a"; "b" ] in
  Alcotest.check_raises "caps cannot cover q"
    (Invalid_argument "Selection_policy: caps cover at most 2 of the 5 quorum slots")
    (fun () ->
      Policy.validate (Policy.Diversity_capped { topology = two; cap = 1 })
        ~n:n9 ~q:q9)

let test_policy_string_roundtrip () =
  List.iter
    (fun pol ->
      check_bool (Policy.to_string pol) true
        (Policy.of_string (Policy.to_string pol) = Some pol))
    [
      Policy.Lex_first;
      Policy.Seeded_lottery { seed = 0x9E18L };
      Policy.Diversity_capped { topology = topo9 (); cap = 2 };
    ]

let random_graph rng =
  let g = Graph.create n9 in
  for _ = 1 to Prng.int_in rng 0 8 do
    let a = Prng.int rng n9 and b = Prng.int rng n9 in
    if a <> b then Graph.add_edge g a b
  done;
  g

let policies =
  lazy
    [
      Policy.Lex_first;
      Policy.Seeded_lottery { seed = 7L };
      Policy.Diversity_capped { topology = topo9 (); cap = 2 };
    ]

(* Determinism is what carries Agreement: the same inputs must produce the
   same quorum, for every policy, on arbitrary suspicion graphs. *)
let prop_policies_deterministic_and_valid =
  QCheck.Test.make ~name:"every policy: deterministic, size-q, independent"
    ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      List.for_all
        (fun pol ->
          let g = random_graph (Prng.of_int seed) in
          let a = select pol g and b = select pol g in
          a = b
          &&
          match a with
          | None -> true
          | Some quorum ->
            List.length quorum = q9
            && Indep.is_independent g quorum
            && List.sort compare quorum = quorum)
        (Lazy.force policies))

let prop_diverse_never_violates_caps =
  QCheck.Test.make ~name:"DiversityCapped: per-label counts never exceed cap"
    ~count:200
    QCheck.(pair (int_range 0 100_000) (int_range 1 2))
    (fun (seed, cap) ->
      let topo = topo9 () in
      let g = random_graph (Prng.of_int seed) in
      match select (Policy.Diversity_capped { topology = topo; cap }) g with
      | None -> true
      | Some quorum ->
        List.for_all
          (fun label ->
            let members = Topology.members topo label in
            List.length (List.filter (fun p -> List.mem p members) quorum)
            <= cap)
          (Topology.labels topo))

(* The lottery runs the same feasibility checks as lex-first, so one finds
   a quorum exactly when the other does. *)
let prop_lottery_feasible_iff_lex =
  QCheck.Test.make ~name:"SeededLottery: quorum exists iff lex-first's does"
    ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let g = random_graph (Prng.of_int seed) in
      Option.is_some (select (Policy.Seeded_lottery { seed = 3L }) g)
      = Option.is_some (select Policy.Lex_first g))

let prop_diverse_order_is_permutation =
  QCheck.Test.make ~name:"DiversityCapped order: permutes, never drops"
    ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let candidates =
        List.filter (fun _ -> Prng.bool rng) (List.init n9 Fun.id)
      in
      let pol = Policy.Diversity_capped { topology = topo9 (); cap = 1 } in
      let ordered =
        Policy.order pol ~candidates ~weight:no_weight ~cepoch:0 ~epoch:0
      in
      List.sort compare ordered = List.sort compare candidates)

(* ------------------------------------------------------------------ *)
(* Quorum intersection *)

let test_intersection_threshold () =
  check_int "n=9 f=4" 1 (Intersection.threshold ~n:9 ~f:4);
  check_int "n=4 f=1" 2 (Intersection.threshold ~n:4 ~f:1);
  check_int "overlap" 2 (Intersection.overlap [ 0; 1; 2 ] [ 1; 2; 3 ])

let test_intersection_ok_on_sized_quorums () =
  let v = Intersection.check ~n:4 ~f:1 [ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] in
  check_bool "ok" true v.Intersection.ok;
  check_int "pairs" 1 v.Intersection.pairs;
  check_int "min overlap" 2 v.Intersection.min_overlap

let test_intersection_certifies_undersized () =
  (* The seeded quorum-size mutation's signature: two disjoint undersized
     "quorums" in one epoch group. Counting intersection catches it. *)
  let v = Intersection.check ~n:4 ~f:1 [ [ 0; 1 ]; [ 2; 3 ] ] in
  check_bool "violation" false v.Intersection.ok;
  check_bool "witness present" true (v.Intersection.witness <> None)

let test_intersection_collapses_duplicates () =
  let v = Intersection.check ~n:4 ~f:1 [ [ 0; 1; 2 ]; [ 0; 1; 2 ] ] in
  check_int "one distinct quorum" 1 v.Intersection.quorums;
  check_int "no pairs" 0 v.Intersection.pairs;
  check_bool "vacuously ok" true v.Intersection.ok

let test_intersection_sampled_deterministic () =
  let g = Graph.create 64 in
  let quorums =
    List.filter_map
      (fun s ->
        Policy.select
          (Policy.Seeded_lottery { seed = Int64.of_int s })
          ~graph:g ~q:43 ~weight:no_weight ~cepoch:0 ~epoch:0)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  let v1 = Intersection.check_sampled ~n:64 ~f:21 ~seed:9 ~max_pairs:5 quorums in
  let v2 = Intersection.check_sampled ~n:64 ~f:21 ~seed:9 ~max_pairs:5 quorums in
  check_bool "same verdict on replay" true (v1 = v2);
  check_int "sampled down to max_pairs" 5 v1.Intersection.pairs;
  check_bool "ok" true v1.Intersection.ok

(* ------------------------------------------------------------------ *)
(* Correlated fault kinds *)

let region ~label ~members = Fault.RegionPartition { label; members }

let test_blame_counts_each_member_once () =
  (* Three correlated phases plus a crash all naming p0/p1: the budget is
     charged once per member, not once per phase. *)
  let sched =
    [
      Fault.at (region ~label:"r0" ~members:[ 0; 1 ]);
      Fault.at (Fault.RackLoss { label = "r0"; members = [ 0; 1 ] });
      Fault.at
        (Fault.GrayRegion { label = "r0"; members = [ 0; 1 ]; by = ms 40 });
      Fault.at (Fault.Crash 0);
    ]
  in
  check_ilist "blamed once each" [ 0; 1 ] (Fault.blamed ~n:5 sched);
  match Fault.classify ~n:5 ~f:2 sched with
  | Fault.In_model { faulty } -> check_ilist "in-model" [ 0; 1 ] faulty
  | Fault.Out_of_model why -> Alcotest.failf "unexpectedly out-of-model: %s" why

let test_region_partition_blames_smaller_side () =
  let sched = [ Fault.at (region ~label:"big" ~members:[ 0; 1; 2 ]) ] in
  check_ilist "complement is the smaller side" [ 3; 4 ] (Fault.blamed ~n:5 sched)

let test_rack_loss_budget_exceeded () =
  let sched =
    [ Fault.at (Fault.RackLoss { label = "r"; members = [ 0; 1; 2 ] }) ]
  in
  match Fault.classify ~n:7 ~f:2 sched with
  | Fault.Out_of_model _ -> ()
  | Fault.In_model _ -> Alcotest.fail "3 rack members must exceed f = 2"

let test_correlated_string_roundtrip () =
  let sched =
    [
      Fault.at ~start:(ms 100) ~stop:(ms 900)
        (region ~label:"r0" ~members:[ 0; 1 ]);
      Fault.at ~start:(ms 50) (Fault.RackLoss { label = "r1"; members = [ 2 ] });
      Fault.at ~start:(ms 10) ~stop:(ms 400)
        (Fault.GrayRegion { label = "r2"; members = [ 3; 4 ]; by = ms 60 });
    ]
  in
  check_bool "of_string inverts to_string" true
    (Fault.of_string ~n:5 (Fault.to_string sched) = sched)

let prop_correlated_roundtrip =
  QCheck.Test.make
    ~name:"correlated kinds: render/parse round-trip, any schedule" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let members () =
        List.sort_uniq compare
          (List.init (Prng.int_in rng 1 3) (fun _ -> Prng.int rng 5))
      in
      let kind () =
        let label = Printf.sprintf "r%d" (Prng.int rng 3) in
        match Prng.int rng 3 with
        | 0 -> region ~label ~members:(members ())
        | 1 -> Fault.RackLoss { label; members = members () }
        | _ ->
          Fault.GrayRegion
            { label; members = members (); by = ms (Prng.int_in rng 1 500) }
      in
      let phase () =
        let start = ms (Prng.int_in rng 0 1000) in
        let stop =
          if Prng.bool rng then Some (start + ms (Prng.int_in rng 1 1000))
          else None
        in
        match stop with
        | Some stop -> Fault.at ~start ~stop (kind ())
        | None -> Fault.at ~start (kind ())
      in
      let sched = List.init (Prng.int_in rng 1 4) (fun _ -> phase ()) in
      Fault.of_string ~n:5 (Fault.to_string sched) = sched)

let test_correlated_json_kinds () =
  let sched =
    [
      Fault.at (region ~label:"r0" ~members:[ 0; 1 ]);
      Fault.at (Fault.RackLoss { label = "r1"; members = [ 2 ] });
      Fault.at
        (Fault.GrayRegion { label = "r2"; members = [ 3 ]; by = ms 40 });
    ]
  in
  match Fault.to_json sched with
  | Qs_obs.Json.List phases ->
    check_int "three phases" 3 (List.length phases);
    let kinds =
      List.map
        (fun p ->
          match Option.bind (Qs_obs.Json.member "fault" p) (Qs_obs.Json.member "kind") with
          | Some (Qs_obs.Json.String s) -> s
          | _ -> Alcotest.fail "phase without a fault kind field")
        phases
    in
    check_slist "kind tags" [ "region-partition"; "rack-loss"; "gray-region" ] kinds
  | _ -> Alcotest.fail "schedule json is not a list"

(* ------------------------------------------------------------------ *)
(* Campaign integration: correlated campaigns with non-default policies
   keep the --jobs byte-identity contract, and E18 reproduces. *)

let test_correlated_campaign_jobs_identical () =
  let module Chaos = Qs_harness.Chaos in
  let module Campaign = Qs_faults.Campaign in
  List.iter
    (fun policy ->
      let params = { (Chaos.default_params Chaos.Xpaxos_qs) with policy } in
      let go jobs =
        Chaos.campaign Chaos.Xpaxos_qs ~params ~correlated:true ~runs:3 ~jobs
          ~seed:9 ()
      in
      let a = go 1 and b = go 2 in
      check_bool
        (Policy.to_string policy ^ ": clean campaign")
        true (Campaign.ok a);
      check_bool
        (Policy.to_string policy ^ ": jobs=2 report byte-identical")
        true
        (Campaign.render a = Campaign.render b))
    [
      Policy.Seeded_lottery { seed = 11L };
      Policy.Diversity_capped
        {
          topology =
            Chaos.topology_for (Chaos.default_params Chaos.Xpaxos_qs);
          cap = 1;
        };
    ]

let test_e18_reproduces () =
  let o = Qs_harness.Experiments.e18 () in
  check_bool "all E18 verdicts ok" true (Qs_harness.Verdict.all_ok o.verdicts)

(* ------------------------------------------------------------------ *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_policies_deterministic_and_valid;
      prop_diverse_never_violates_caps;
      prop_lottery_feasible_iff_lex;
      prop_diverse_order_is_permutation;
      prop_correlated_roundtrip;
    ]

let () =
  Alcotest.run "policy"
    [
      ( "topology",
        [
          Alcotest.test_case "blocks" `Quick test_topology_blocks;
          Alcotest.test_case "round robin" `Quick test_topology_round_robin;
          Alcotest.test_case "string roundtrip" `Quick test_topology_string_roundtrip;
          Alcotest.test_case "remap fresh slot" `Quick test_topology_remap_fresh_slot;
        ] );
      ( "selection",
        [
          Alcotest.test_case "lex prefix" `Quick test_lex_is_prefix_on_edgeless;
          Alcotest.test_case "diverse spreads" `Quick test_diverse_spreads_on_edgeless;
          Alcotest.test_case "validate rejects" `Quick test_diverse_validate_rejects_nonsense;
          Alcotest.test_case "policy string roundtrip" `Quick test_policy_string_roundtrip;
        ] );
      ( "intersection",
        [
          Alcotest.test_case "threshold and overlap" `Quick test_intersection_threshold;
          Alcotest.test_case "ok on sized quorums" `Quick test_intersection_ok_on_sized_quorums;
          Alcotest.test_case "certifies undersized" `Quick test_intersection_certifies_undersized;
          Alcotest.test_case "collapses duplicates" `Quick test_intersection_collapses_duplicates;
          Alcotest.test_case "sampled deterministic" `Quick test_intersection_sampled_deterministic;
        ] );
      ( "correlated",
        [
          Alcotest.test_case "blame once" `Quick test_blame_counts_each_member_once;
          Alcotest.test_case "smaller side" `Quick test_region_partition_blames_smaller_side;
          Alcotest.test_case "budget exceeded" `Quick test_rack_loss_budget_exceeded;
          Alcotest.test_case "string roundtrip" `Quick test_correlated_string_roundtrip;
          Alcotest.test_case "json kinds" `Quick test_correlated_json_kinds;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "jobs identity with policies" `Quick
            test_correlated_campaign_jobs_identical;
          Alcotest.test_case "E18 reproduces" `Quick test_e18_reproduces;
        ] );
      ("properties", qsuite);
    ]
