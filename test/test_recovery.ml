(* Crash-recovery subsystem tests: the durable Store's fsync-point
   semantics, the versioned Codec framing (round-trips and explicit
   corruption), the Rejoin engine on a live simulation (happy path, retry
   backoff, response buffering, the never-completing dormant-safe mode,
   anti-entropy gossip), amnesia/dormancy on both selection variants, and
   the XPaxos deep-durability integration. Plus the two codec QCheck
   satellites: matrix round-trip and CRDT-merge laws on decoded state, and
   the fault-DSL round-trip over every kind including amnesia crashes. *)

module Sim = Qs_sim.Sim
module Stime = Qs_sim.Stime
module Network = Qs_sim.Network
module Matrix = Qs_core.Suspicion_matrix
module QS = Qs_core.Quorum_select
module FS = Qs_follower.Follower_select
module Store = Qs_recovery.Store
module Codec = Qs_recovery.Codec
module Rejoin = Qs_recovery.Rejoin
module Fault = Qs_faults.Fault
module Replica = Qs_xpaxos.Replica
module Xcluster = Qs_xpaxos.Xcluster
module Auth = Qs_crypto.Auth

let ms = Stime.of_ms

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str_opt = Alcotest.(check (option string))

(* ------------------------------------------------------------------ *)
(* Store: what survives a crash is exactly the last fsync point *)

let test_store_fsync_point () =
  let s = Store.create () in
  Store.put s "k" "v1";
  check_str_opt "running process reads the overlay" (Some "v1") (Store.get s "k");
  check_str_opt "recovery would not" None (Store.durable_get s "k");
  Store.fsync s;
  check_str_opt "fsync makes it durable" (Some "v1") (Store.durable_get s "k");
  Store.put s "k" "v2";
  Store.put s "j" "x";
  Store.crash s;
  check_str_opt "unflushed overwrite is gone" (Some "v1") (Store.get s "k");
  check_str_opt "unflushed insert is gone" None (Store.get s "j");
  check_int "both losses counted" 2 (Store.lost_writes s);
  check_int "one crash" 1 (Store.crashes s)

let test_store_auto_fsync () =
  let s = Store.create ~fsync_every:2 () in
  Store.put s "a" "1";
  check_int "first put stays pending" 1 (Store.pending_writes s);
  Store.put s "b" "2";
  check_int "second put auto-fsyncs" 0 (Store.pending_writes s);
  Store.put s "c" "3";
  Store.crash s;
  check_str_opt "pre-point writes survive" (Some "2") (Store.get s "b");
  check_str_opt "post-point write does not" None (Store.get s "c")

(* ------------------------------------------------------------------ *)
(* Codec: round-trips and explicit corruption *)

let sample_matrix () =
  let m = Matrix.create 4 in
  Matrix.record m ~suspector:0 ~suspect:3 ~epoch:2;
  Matrix.record m ~suspector:2 ~suspect:1 ~epoch:5;
  m

let test_codec_roundtrips () =
  let m = sample_matrix () in
  check_bool "matrix" true (Matrix.equal m (Codec.decode_matrix (Codec.encode_matrix m)));
  check_int "epoch" 12345 (Codec.decode_epoch (Codec.encode_epoch 12345));
  let tmo = [| ms 25; ms 50; ms 400 |] in
  check_bool "timeouts" true (Codec.decode_timeouts (Codec.encode_timeouts tmo) = tmo)

let corrupt name f =
  match f () with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.failf "%s: corruption absorbed silently" name

let test_codec_rejects_corruption () =
  let enc = Codec.encode_matrix (sample_matrix ()) in
  corrupt "empty" (fun () -> Codec.decode_matrix "");
  corrupt "truncated" (fun () ->
      Codec.decode_matrix (String.sub enc 0 (String.length enc - 3)));
  let flipped = Bytes.of_string enc in
  let mid = String.length enc / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x41));
  corrupt "bit flip caught by checksum" (fun () ->
      Codec.decode_matrix (Bytes.to_string flipped));
  corrupt "wrong tag" (fun () -> Codec.decode_matrix (Codec.encode_epoch 7));
  corrupt "unknown version" (fun () ->
      Codec.decode_matrix (Codec.frame ~tag:"mtx" ~version:99 "payload"))

(* Satellite: QCheck over random matrices — codec round-trip, and the
   join-semilattice laws still hold for state that went through the wire
   (what rejoin relies on: merging a decoded stale matrix is idempotent
   and commutative). *)

let matrix_gen n =
  QCheck.Gen.(
    map
      (fun cells ->
        let m = Matrix.create n in
        List.iter
          (fun (i, j, e) ->
            if i <> j then Matrix.record m ~suspector:i ~suspect:j ~epoch:e)
          cells;
        m)
      (list_size (int_bound (n * n)) (triple (int_bound (n - 1)) (int_bound (n - 1)) (int_range 1 6))))

let matrix_arb =
  QCheck.make ~print:(Format.asprintf "%a" Matrix.pp) (matrix_gen 5)

let prop_matrix_codec_roundtrip =
  QCheck.Test.make ~name:"matrix codec round-trip" ~count:200 matrix_arb (fun m ->
      Matrix.equal m (Codec.decode_matrix (Codec.encode_matrix m)))

let prop_decoded_merge_laws =
  QCheck.Test.make ~name:"merge of decoded matrix: idempotent + commutative" ~count:200
    QCheck.(pair matrix_arb matrix_arb)
    (fun (a, b) ->
      let d = Codec.decode_matrix (Codec.encode_matrix a) in
      (* idempotent: a second merge of the same decoded state is a no-op *)
      let t = Matrix.copy b in
      ignore (Matrix.merge t d);
      let once = Matrix.copy t in
      check_bool "second merge changes nothing" false (Matrix.merge t d);
      check_bool "state unchanged" true (Matrix.equal once t);
      (* commutative: a ⊔ b = b ⊔ a, through the codec *)
      let ab = Matrix.copy a and ba = Matrix.copy b in
      ignore (Matrix.merge ab (Codec.decode_matrix (Codec.encode_matrix b)));
      ignore (Matrix.merge ba d);
      Matrix.equal ab ba)

(* Satellite: the fault DSL renders and re-parses every kind, including
   amnesia crashes and the four commission kinds, byte-for-byte. *)

let kind_gen n =
  QCheck.Gen.(
    let pid = int_bound (n - 1) in
    let link = map2 (fun src d -> (src, (src + 1 + d) mod n)) pid (int_bound (n - 2)) in
    oneof
      [
        map (fun p -> Fault.Crash p) pid;
        map (fun p -> Fault.CrashAmnesia p) pid;
        map (fun (src, dst) -> Fault.Omit { src; dst }) link;
        map2 (fun (src, dst) by -> Fault.Delay { src; dst; by = ms by }) link (int_range 1 500);
        map2
          (fun (src, dst) copies -> Fault.Duplicate { src; dst; copies })
          link (int_range 2 4);
        map (fun k -> Fault.Partition (List.init k Fun.id)) (int_range 1 (n - 1));
        map2
          (fun src k ->
            let scope =
              List.filteri (fun i _ -> i < k)
                (List.filter (fun q -> q <> src) (List.init n Fun.id))
            in
            Fault.Equivocate { src; scope })
          pid (int_range 1 (n - 1));
        map (fun (src, victim) -> Fault.Slander { src; victim }) link;
        map (fun (src, dst) -> Fault.Tamper { src; dst }) link;
        map (fun (src, dst) -> Fault.Replay { src; dst }) link;
      ])

let phase_gen n =
  QCheck.Gen.(
    map3
      (fun what start stop_delta ->
        let start = ms start in
        match stop_delta with
        | None -> { Fault.start; stop = None; what }
        | Some d -> { Fault.start; stop = Some (start + ms d); what })
      (kind_gen n) (int_bound 3000)
      (opt (int_range 1 2000)))

let schedule_arb n =
  QCheck.make ~print:Fault.to_string QCheck.Gen.(list_size (int_bound 6) (phase_gen n))

let prop_fault_roundtrip =
  QCheck.Test.make ~name:"fault schedule to_string/of_string round-trip (all kinds)"
    ~count:300 (schedule_arb 6) (fun s ->
      let rendered = Fault.to_string s in
      Fault.to_string (Fault.of_string ~n:6 rendered) = rendered)

(* ------------------------------------------------------------------ *)
(* Rejoin engine on a live simulation *)

(* A 3-node recovery plane over synthetic per-node state: each node's
   "protocol state" is just a matrix + epoch, and adoption counts let the
   tests see exactly when the CRDT join ran. *)
let plane ?(tweak = fun c -> c) ~n () =
  let sim = Sim.create () in
  let net = Network.create ~sim ~n ~delay:(Network.Fixed (ms 1)) ~fifo:true () in
  let mats = Array.init n (fun _ -> Matrix.create n) in
  let epochs = Array.make n 1 in
  let adoptions = Array.make n 0 in
  let config = tweak (Rejoin.default_config ~n) in
  let nodes =
    Array.init n (fun me ->
        Rejoin.create ~sim config ~me
          ~collect:(fun () ->
            { Rejoin.matrix = Codec.encode_matrix mats.(me);
              epoch = epochs.(me);
              extra = "" })
          ~adopt:(fun ~matrix ~epoch ~extra:_ ->
            ignore (Matrix.merge mats.(me) matrix);
            if epoch > epochs.(me) then epochs.(me) <- epoch;
            adoptions.(me) <- adoptions.(me) + 1)
          ~send:(fun ~dst msg -> Network.send net ~src:me ~dst msg)
          ())
  in
  Array.iteri
    (fun i node -> Network.set_handler net i (fun ~src msg -> Rejoin.handle node ~src msg))
    nodes;
  (sim, net, mats, epochs, adoptions, nodes)

let seed_suspicion mats p = Matrix.record mats.(p) ~suspector:0 ~suspect:2 ~epoch:1

let test_rejoin_happy_path () =
  let sim, _, mats, epochs, adoptions, nodes = plane ~n:3 () in
  seed_suspicion mats 0;
  seed_suspicion mats 2;
  epochs.(0) <- 3;
  Rejoin.start nodes.(1);
  Sim.run sim;
  check_bool "round closed" false (Rejoin.rejoining nodes.(1));
  check_int "one completed round" 1 (Rejoin.completed_rounds nodes.(1));
  check_int "no retries needed" 0 (Rejoin.retries nodes.(1));
  check_bool "peer state merged" true
    (Matrix.get mats.(1) ~suspector:0 ~suspect:2 > 0);
  check_int "epoch fast-forwarded" 3 epochs.(1);
  check_bool "adopted at least the completing response" true (adoptions.(1) >= 1)

let test_rejoin_retries_with_backoff () =
  let sim, net, _, _, _, nodes = plane ~n:3 () in
  (* Black-hole the rejoiner's requests until t = 120ms: the initial
     broadcast and the 50ms retry die, the 150ms retry gets through. *)
  ignore
    (Network.add_filter net (fun ~now ~src ~dst:_ _ ->
         if src = 1 && now < ms 120 then Network.Drop else Network.Deliver));
  Rejoin.start nodes.(1);
  Sim.run sim;
  check_int "two rebroadcasts before success" 2 (Rejoin.retries nodes.(1));
  check_int "completed despite the loss" 1 (Rejoin.completed_rounds nodes.(1))

let test_rejoin_buffers_until_complete () =
  (* needed = 2, but one of the two peers never answers: the single valid
     response is buffered, never adopted, and the node stays dormant —
     the safe failure mode. *)
  let sim, net, _, _, adoptions, nodes =
    plane ~n:3 ~tweak:(fun c -> { c with Rejoin.needed = 2 }) ()
  in
  ignore
    (Network.add_filter net (fun ~now:_ ~src ~dst _ ->
         if src = 0 && dst = 1 then Network.Drop else Network.Deliver));
  Rejoin.start nodes.(1);
  Sim.run sim;
  check_bool "still rejoining" true (Rejoin.rejoining nodes.(1));
  check_int "retries exhausted" (Rejoin.default_config ~n:3).Rejoin.max_retries
    (Rejoin.retries nodes.(1));
  check_int "nothing adopted from inside the open round" 0 adoptions.(1)

let test_rejoin_needed_two_completes () =
  let sim, _, mats, _, adoptions, nodes =
    plane ~n:3 ~tweak:(fun c -> { c with Rejoin.needed = 2 }) ()
  in
  seed_suspicion mats 0;
  Rejoin.start nodes.(1);
  Sim.run sim;
  check_bool "closed with two responders" false (Rejoin.rejoining nodes.(1));
  check_int "whole buffer adopted at completion" 2 adoptions.(1);
  check_bool "merged" true (Matrix.get mats.(1) ~suspector:0 ~suspect:2 > 0)

let test_rejoin_rejects_bad_payloads () =
  let sim, _, _, _, adoptions, nodes = plane ~n:3 () in
  Rejoin.handle nodes.(1) ~src:0 (Rejoin.State_push { payload = { matrix = "garbage"; epoch = 1; extra = "" } });
  Rejoin.handle nodes.(1) ~src:2
    (Rejoin.State_push
       { payload = { matrix = Codec.encode_matrix (Matrix.create 3); epoch = 0; extra = "" } });
  Sim.run sim;
  check_int "both rejected by the codec/validity gate" 2 (Rejoin.bad_payloads nodes.(1));
  check_int "neither adopted" 0 adoptions.(1)

let test_gossip_converges_without_crash () =
  let sim, _, mats, _, adoptions, nodes =
    plane ~n:3 ~tweak:(fun c -> { c with Rejoin.gossip_every = Some (ms 100) }) ()
  in
  seed_suspicion mats 0;
  Rejoin.start_gossip nodes.(0);
  Sim.run ~until:(ms 450) sim;
  check_bool "push reached p1" true (Matrix.get mats.(1) ~suspector:0 ~suspect:2 > 0);
  check_bool "push reached p2" true (Matrix.get mats.(2) ~suspector:0 ~suspect:2 > 0);
  check_bool "adopted directly (no open round)" true (adoptions.(1) >= 1)

(* ------------------------------------------------------------------ *)
(* Selector dormancy: amnesia wipes, merges stay silent, absorb wakes *)

let test_qs_amnesia_dormancy () =
  let cfg = { QS.n = 4; f = 1 } in
  let auth = Auth.create 4 in
  let captured = ref [] in
  let qs0 =
    QS.create cfg ~me:0 ~auth ~send:(fun m -> captured := m :: !captured)
      ~on_quorum:(fun _ -> ())
      ()
  in
  QS.handle_suspected qs0 [ 3 ];
  let update = List.hd !captured in
  let qs1 =
    QS.create cfg ~me:1 ~auth ~send:(fun _ -> ()) ~on_quorum:(fun _ -> ()) ()
  in
  QS.handle_update qs1 update;
  check_bool "merged while awake" true (Matrix.get (QS.matrix qs1) ~suspector:0 ~suspect:3 > 0);
  QS.amnesia qs1;
  check_bool "dormant" true (QS.dormant qs1);
  check_int "matrix wiped" 0 (Matrix.get (QS.matrix qs1) ~suspector:0 ~suspect:3);
  check_int "epoch reset" 1 (QS.epoch qs1);
  let issued = QS.quorums_issued qs1 in
  QS.handle_update qs1 update;
  check_bool "row merged while dormant (anti-entropy)" true
    (Matrix.get (QS.matrix qs1) ~suspector:0 ~suspect:3 > 0);
  check_int "but no quorum issued from stale state" issued (QS.quorums_issued qs1);
  check_bool "still dormant" true (QS.dormant qs1);
  QS.absorb qs1 ~matrix:(QS.matrix qs0) ~epoch:(QS.epoch qs0);
  check_bool "absorb wakes it" false (QS.dormant qs1);
  check_int "quorum size restored" 3 (List.length (QS.last_quorum qs1))

let test_fs_amnesia_dormancy () =
  let cfg = { QS.n = 4; f = 1 } in
  let auth = Auth.create 4 in
  let fs =
    FS.create cfg ~me:0 ~auth
      ~send:(fun _ -> ())
      ~on_quorum:(fun ~leader:_ _ -> ())
      ~fd_expect:(fun ~leader:_ ~epoch:_ -> ())
      ~fd_cancel:(fun () -> ())
      ~fd_detected:(fun _ -> ())
      ()
  in
  FS.handle_suspected fs [ 1 ];
  FS.amnesia fs;
  check_bool "dormant" true (FS.dormant fs);
  FS.absorb fs ~matrix:(Matrix.create 4) ~epoch:2;
  check_bool "absorb wakes it" false (FS.dormant fs);
  check_int "quorum size restored" 3 (List.length (FS.last_quorum fs))

(* ------------------------------------------------------------------ *)
(* XPaxos deep durability: committed prefix survives the crash, peers
   supply the rest *)

let xpaxos_cfg =
  {
    Replica.n = 3;
    f = 1;
    mode = Replica.Quorum_selection;
    initial_timeout = ms 25;
    timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
  }

let test_xpaxos_amnesia_restores_durable_log () =
  let c = Xcluster.create xpaxos_cfg in
  Xcluster.attach_durability c;
  let r1 = Xcluster.submit c "a" in
  Xcluster.run ~until:(ms 400) c;
  check_bool "request committed before the crash" true (Xcluster.is_globally_committed c r1);
  (* Only the synchronous group executes in XPaxos — crash one of its
     members, where there is actually durable state to restore. *)
  let victim = List.hd (List.rev (Xcluster.executed_by c r1)) in
  let executed_before = List.length (Replica.executed (Xcluster.replica c victim)) in
  check_bool "victim executed it" true (executed_before >= 1);
  let payload = Xcluster.amnesia c victim in
  (* The committed prefix was fsynced at execute, so the wipe-and-reimport
     lands back on the same history — nothing durable was lost. *)
  check_int "durable log re-imported" executed_before
    (List.length (Replica.executed (Xcluster.replica c victim)));
  check_bool "durable selection state returned" true (payload.Rejoin.epoch >= 1);
  (* CRDT join with a peer's payload (what the rejoin engine does on each
     StateResp), then keep running: the cluster must still make progress
     with the recovered replica participating. *)
  let peer = Xcluster.collect_payload c 0 in
  Xcluster.adopt_payload c victim
    ~matrix:(Codec.decode_matrix peer.Rejoin.matrix)
    ~epoch:peer.Rejoin.epoch ~extra:peer.Rejoin.extra;
  let r2 = Xcluster.submit c "b" in
  Xcluster.run ~until:(ms 1200) c;
  check_bool "post-recovery request commits" true (Xcluster.is_globally_committed c r2);
  check_bool "histories prefix-consistent across the recovery" true
    (Xcluster.consistent c ~correct:[ 0; 1; 2 ])

let test_xpaxos_amnesia_without_durability_is_total () =
  let c = Xcluster.create xpaxos_cfg in
  let r1 = Xcluster.submit c "a" in
  Xcluster.run ~until:(ms 400) c;
  check_bool "committed" true (Xcluster.is_globally_committed c r1);
  let victim = List.hd (Xcluster.executed_by c r1) in
  let payload = Xcluster.amnesia c victim in
  check_int "no store: everything volatile is gone" 0
    (List.length (Replica.executed (Xcluster.replica c victim)));
  check_int "trivial payload" 1 payload.Rejoin.epoch

(* ------------------------------------------------------------------ *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_matrix_codec_roundtrip; prop_decoded_merge_laws; prop_fault_roundtrip ]

let () =
  Alcotest.run "recovery"
    [
      ( "store",
        [
          Alcotest.test_case "fsync point" `Quick test_store_fsync_point;
          Alcotest.test_case "auto fsync" `Quick test_store_auto_fsync;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round-trips" `Quick test_codec_roundtrips;
          Alcotest.test_case "rejects corruption" `Quick test_codec_rejects_corruption;
        ] );
      ( "rejoin",
        [
          Alcotest.test_case "happy path" `Quick test_rejoin_happy_path;
          Alcotest.test_case "retry backoff" `Quick test_rejoin_retries_with_backoff;
          Alcotest.test_case "buffers until complete" `Quick test_rejoin_buffers_until_complete;
          Alcotest.test_case "needed=2 completes" `Quick test_rejoin_needed_two_completes;
          Alcotest.test_case "bad payloads rejected" `Quick test_rejoin_rejects_bad_payloads;
          Alcotest.test_case "gossip converges" `Quick test_gossip_converges_without_crash;
        ] );
      ( "dormancy",
        [
          Alcotest.test_case "quorum-select" `Quick test_qs_amnesia_dormancy;
          Alcotest.test_case "follower-select" `Quick test_fs_amnesia_dormancy;
        ] );
      ( "xpaxos",
        [
          Alcotest.test_case "durable log restored" `Quick test_xpaxos_amnesia_restores_durable_log;
          Alcotest.test_case "no durability = total loss" `Quick
            test_xpaxos_amnesia_without_durability_is_total;
        ] );
      ("properties", qsuite);
    ]
