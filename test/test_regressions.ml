(* Replays every pinned schedule in test/regressions/ through the
   Modelcheck corpus runner: model-checker counterexamples ([kind=mc]) and
   monitored chaos runs ([kind=chaos]) alike. Each .sched file becomes one
   test case; adding a regression is adding a file. *)

let corpus_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "regressions"; "test/regressions"; Filename.concat (Filename.dirname Sys.executable_name) "regressions" ]

let cases =
  match corpus_dir () with
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".sched")
    |> List.sort compare
    |> List.map (fun f ->
           Alcotest.test_case f `Quick (fun () ->
               match Qs_harness.Modelcheck.run_regression ~path:(Filename.concat dir f) with
               | Ok () -> ()
               | Error msg -> Alcotest.failf "%s: %s" f msg))

let () =
  if cases = [] then failwith "regression corpus not found (expected test/regressions/*.sched)";
  Alcotest.run "regressions" [ ("corpus", cases) ]
