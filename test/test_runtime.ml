(* Real runtime: mailbox/frame/envelope components, the TCP transport's
   quarantine and dedup behavior against raw sockets, and end-to-end
   loopback clusters — no-fault, nemesis loss+latency, and kill-then-
   restart rejoin — verdicted by the online monitor. *)

module Stime = Qs_sim.Stime
module Sim = Qs_sim.Sim
module Codec = Qs_recovery.Codec
module Fault = Qs_faults.Fault
module Replica = Qs_xpaxos.Replica
module Xmsg = Qs_xpaxos.Xmsg
module Mailbox = Qs_runtime.Mailbox
module Frame = Qs_runtime.Frame
module Envelope = Qs_runtime.Envelope
module Transport = Qs_runtime.Transport
module Tcp = Qs_runtime.Tcp
module Node = Qs_runtime.Node
module Cluster = Qs_runtime.Cluster
module Supervisor = Qs_runtime.Supervisor

let ms = Stime.of_ms

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_shed_oldest () =
  let mb = Mailbox.create ~capacity:3 in
  List.iter (fun i -> ignore (Mailbox.push mb i : bool)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "shed count" 2 (Mailbox.shed mb);
  let drained = List.filter_map (fun _ -> Mailbox.pop ~timeout:0.01 mb) [ (); (); () ] in
  Alcotest.(check (list int)) "oldest shed, newest kept" [ 3; 4; 5 ] drained

let test_mailbox_close_drains () =
  let mb = Mailbox.create ~capacity:4 in
  ignore (Mailbox.push mb "a" : bool);
  Mailbox.close mb;
  Alcotest.(check bool) "push after close rejected" false (Mailbox.push mb "b");
  Alcotest.(check (option string)) "drains residue" (Some "a") (Mailbox.pop mb);
  Alcotest.(check (option string)) "then closed" None (Mailbox.pop mb);
  Alcotest.(check int) "close discards don't count as shed" 0 (Mailbox.shed mb)

let test_mailbox_cross_thread () =
  let mb = Mailbox.create ~capacity:128 in
  let got = ref [] in
  let consumer =
    Thread.create
      (fun () ->
        let rec go () =
          match Mailbox.pop mb with
          | Some v ->
            got := v :: !got;
            go ()
          | None -> ()
        in
        go ())
      ()
  in
  for i = 0 to 99 do
    ignore (Mailbox.push mb i : bool)
  done;
  Mailbox.close mb;
  Thread.join consumer;
  Alcotest.(check int) "all delivered" 100 (List.length !got);
  Alcotest.(check (list int)) "in order" (List.init 100 (fun i -> i)) (List.rev !got)

(* ------------------------------------------------------------------ *)
(* Supervisor *)

let test_supervisor_restart_budget () =
  let runs = ref 0 in
  let sup =
    Supervisor.spawn ~name:"crashy" ~restarts:2 (fun () ->
        incr runs;
        failwith "boom")
  in
  Supervisor.join sup;
  Alcotest.(check int) "initial run + budgeted restarts" 3 !runs;
  Alcotest.(check int) "restarts consumed" 2 (Supervisor.restarts sup);
  Alcotest.(check bool) "dead for good" false (Supervisor.alive sup)

(* ------------------------------------------------------------------ *)
(* Frame codec (satellite: corruption robustness) *)

let arbitrary_frame =
  let open QCheck in
  let gen =
    Gen.map
      (fun (kind, src, incarnation, seq, payload) ->
        { Frame.kind; src; incarnation; seq; payload })
      Gen.(
        tup5
          (oneofl [ Frame.Hello; Frame.Data; Frame.Keepalive ])
          (int_bound 1024) (int_bound 1_000_000) (int_bound 1_000_000)
          (string_size (int_bound 256)))
  and print f =
    Printf.sprintf "{src=%d; seq=%d; payload=%d bytes}" f.Frame.src f.Frame.seq
      (String.length f.Frame.payload)
  in
  QCheck.make ~print gen

let frame_roundtrip =
  QCheck.Test.make ~name:"frame: encode/decode round-trips" ~count:200
    arbitrary_frame (fun f ->
      let body =
        let s = Frame.encode f in
        String.sub s 4 (String.length s - 4)
      in
      Frame.decode_body body = f)

let frame_truncation_rejected =
  QCheck.Test.make ~name:"frame: any truncation rejected as Corrupt" ~count:100
    QCheck.(pair arbitrary_frame small_nat)
    (fun (f, cut) ->
      let s = Frame.encode f in
      let body = String.sub s 4 (String.length s - 4) in
      let keep = cut mod String.length body in
      match Frame.decode_body (String.sub body 0 (max 0 keep)) with
      | _ -> false
      | exception Codec.Corrupt _ -> true)

let frame_corruption_rejected =
  QCheck.Test.make ~name:"frame: any single-byte corruption rejected as Corrupt"
    ~count:300
    QCheck.(triple arbitrary_frame small_nat (int_range 1 255))
    (fun (f, pos, flip) ->
      let s = Frame.encode f in
      let body = Bytes.of_string (String.sub s 4 (String.length s - 4)) in
      let pos = pos mod Bytes.length body in
      Bytes.set body pos
        (Char.chr (Char.code (Bytes.get body pos) lxor flip));
      match Frame.decode_body (Bytes.to_string body) with
      | _ -> false
      | exception Codec.Corrupt _ -> true)

(* ------------------------------------------------------------------ *)
(* Envelope codec *)

let sample_envelopes =
  let auth = Qs_crypto.Auth.create 4 in
  let request = { Xmsg.client = 7; rid = 3; op = "write x=1" } in
  let sp =
    Xmsg.sign_prepare auth ~leader:1 { Xmsg.view = 2; slot = 5; request }
  in
  let entry =
    { Xmsg.eview = 2; eslot = 5; erequest = request; ecommitted = true;
      epsig = sp.Xmsg.psig }
  in
  [
    Envelope.Proto (Xmsg.seal auth ~sender:1 (Xmsg.Prepare sp));
    Envelope.Proto
      (Xmsg.seal auth ~sender:2 (Xmsg.Commit { cview = 2; cslot = 5; csp = sp }));
    Envelope.Proto (Xmsg.seal auth ~sender:0 (Xmsg.Suspect { sview = 4 }));
    Envelope.Proto
      (Xmsg.seal auth ~sender:3
         (Xmsg.View_change { vview = 3; vlog = [ entry; entry ] }));
    Envelope.Proto
      (Xmsg.seal auth ~sender:0 (Xmsg.New_view { nview = 3; nlog = [ entry ] }));
    Envelope.Proto
      (Xmsg.seal auth ~sender:2
         (Xmsg.Qsel
            (Qs_core.Msg.seal auth
               { Qs_core.Msg.owner = 2; row = [| 0; 3; 0; 1 |] })));
    Envelope.Rejoin (Qs_recovery.Rejoin.State_req { rid = 9 });
    Envelope.Rejoin
      (Qs_recovery.Rejoin.State_resp
         { rid = 9;
           payload = { Qs_recovery.Rejoin.matrix = "mx"; epoch = 4; extra = "xx" } });
    Envelope.Rejoin
      (Qs_recovery.Rejoin.State_push
         { payload = { Qs_recovery.Rejoin.matrix = ""; epoch = 1; extra = "" } });
    Envelope.Rejoin (Qs_recovery.Rejoin.State_delta { delta = "d" });
    Envelope.Rejoin (Qs_recovery.Rejoin.Delta_ack { acks = [ (0, 1); (3, 2) ] });
  ]

let test_envelope_roundtrip () =
  List.iteri
    (fun i env ->
      let env' = Envelope.decode (Envelope.encode env) in
      Alcotest.(check bool)
        (Printf.sprintf "envelope %d round-trips" i)
        true (env = env'))
    sample_envelopes

let test_envelope_rejects_garbage () =
  Alcotest.check_raises "garbage" (Codec.Corrupt "bad magic") (fun () ->
      try ignore (Envelope.decode "garbage" : Envelope.t)
      with Codec.Corrupt _ -> raise (Codec.Corrupt "bad magic"))

(* ------------------------------------------------------------------ *)
(* TCP transport against raw sockets: quarantine and dedup *)

module StrWire = struct
  type msg = string

  let encode s = s

  let decode s = if s = "corrupt-me" then raise (Codec.Corrupt "poison") else s
end

module StrTcp = Tcp.Make (StrWire)

let rec wait_for ?(tries = 400) pred =
  if pred () then true
  else if tries = 0 then false
  else begin
    Thread.delay 0.005;
    wait_for ~tries:(tries - 1) pred
  end

(* A corrupt frame on a connection claiming to be from peer 1 must
   quarantine only that connection: endpoint 1's own traffic, on its own
   connection, keeps flowing. *)
let test_corrupt_frame_quarantines_connection_not_sender () =
  let addrs = Cluster.loopback_addrs ~n:2 () in
  let fabric = StrTcp.create ~addrs () in
  let got = ref [] in
  StrTcp.start fabric ~me:0;
  StrTcp.start fabric ~me:1;
  StrTcp.set_handler fabric 0 (fun ~src m -> got := (src, m) :: !got);
  (* Forger: a raw socket sending a Hello claiming src = 1, then garbage. *)
  let forger = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect forger addrs.(0);
  Frame.write forger
    { Frame.kind = Frame.Hello; src = 1; incarnation = 42; seq = 0; payload = "" };
  let corrupt =
    let good =
      Frame.encode
        { Frame.kind = Frame.Data; src = 1; incarnation = 42; seq = 1;
          payload = "evil" }
    in
    let b = Bytes.of_string good in
    (* Flip a payload byte, leaving the length prefix intact. *)
    Bytes.set b (Bytes.length b - 1)
      (Char.chr (Char.code (Bytes.get b (Bytes.length b - 1)) lxor 0xFF));
    Bytes.to_string b
  in
  let _ =
    Unix.write forger (Bytes.of_string corrupt) 0 (String.length corrupt)
  in
  let quarantined =
    wait_for (fun () -> (StrTcp.stats fabric ~me:0).Tcp.corrupt_rejected = 1)
  in
  Alcotest.(check bool) "corrupt frame rejected" true quarantined;
  (* The real peer 1 — the claimed sender — must be unaffected. *)
  StrTcp.send fabric ~src:1 ~dst:0 "hello-from-real-1";
  let delivered =
    wait_for (fun () -> List.mem (1, "hello-from-real-1") !got)
  in
  Alcotest.(check bool) "claimed sender still delivers" true delivered;
  (* And the forger's connection is dead: writes eventually fail. *)
  let dead =
    wait_for (fun () ->
        try
          ignore
            (Unix.write forger (Bytes.of_string corrupt) 0 (String.length corrupt));
          false
        with Unix.Unix_error _ -> true)
  in
  Alcotest.(check bool) "forger connection closed" true dead;
  (try Unix.close forger with Unix.Unix_error _ -> ());
  StrTcp.stop fabric ~me:0;
  StrTcp.stop fabric ~me:1

(* Re-sent sequence numbers are dropped; a new incarnation resets the
   watermark (a restarted process must not be deduped into silence). *)
let test_dedup_watermark_and_incarnation () =
  let addrs = Cluster.loopback_addrs ~n:2 () in
  let fabric = StrTcp.create ~addrs () in
  let got = ref [] in
  StrTcp.start fabric ~me:0;
  StrTcp.set_handler fabric 0 (fun ~src:_ m -> got := m :: !got);
  let peer = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect peer addrs.(1 - 1);
  let send ~incarnation ~seq payload =
    Frame.write peer { Frame.kind = Frame.Data; src = 1; incarnation; seq; payload }
  in
  Frame.write peer
    { Frame.kind = Frame.Hello; src = 1; incarnation = 1; seq = 0; payload = "" };
  send ~incarnation:1 ~seq:1 "a";
  send ~incarnation:1 ~seq:2 "b";
  send ~incarnation:1 ~seq:2 "b-dup";
  send ~incarnation:1 ~seq:1 "a-dup";
  send ~incarnation:1 ~seq:3 "c";
  send ~incarnation:2 ~seq:1 "restart";
  let ok =
    wait_for (fun () -> (StrTcp.stats fabric ~me:0).Tcp.dup_dropped = 2)
  in
  Alcotest.(check bool) "two dups dropped" true ok;
  ignore (wait_for (fun () -> List.length !got = 4) : bool);
  Alcotest.(check (list string))
    "fresh frames delivered in order, watermark reset on new incarnation"
    [ "a"; "b"; "c"; "restart" ] (List.rev !got);
  (try Unix.close peer with Unix.Unix_error _ -> ());
  StrTcp.stop fabric ~me:0

(* ------------------------------------------------------------------ *)
(* Sim-vs-real parity: the same Node functor over both transports *)

module SimT = Transport.Sim (struct
  type msg = Envelope.t
end)

module SimNode = Node.Make (SimT)

(* Drive the identical sequential workload through the simulated transport;
   return the committed-request prefix every replica agrees on. *)
let sim_committed_prefix ~n ~f ~requests =
  let sim = Sim.create ~seed:7L () in
  let net =
    Qs_sim.Network.create ~sim ~n ~delay:(Qs_sim.Network.Fixed (ms 1)) ~fifo:true ()
  in
  let transport = SimT.create ~net in
  let auth = Qs_crypto.Auth.create n in
  let config =
    {
      Replica.n;
      f;
      mode = Replica.Quorum_selection;
      initial_timeout = ms 150;
      timeout_strategy = Qs_fd.Timeout.Exponential { factor = 2.0; max = ms 2000 };
    }
  in
  let nodes =
    Array.init n (fun me ->
        SimNode.create ~config ~me ~auth ~transport
          ~store:(Qs_recovery.Store.create ()) ())
  in
  for k = 0 to requests - 1 do
    let request = { Xmsg.client = 0; rid = k; op = Printf.sprintf "op-%d" k } in
    Array.iter (fun node -> SimNode.submit node request) nodes;
    Sim.run ~until:(ms ((k + 1) * 500)) sim
  done;
  Sim.run ~until:(ms ((requests + 2) * 500)) sim;
  (* Replicas outside the synchronous group stay passive in XPaxos, so
     take the longest executed history — after checking every replica's
     history is a prefix of it. *)
  let histories =
    Array.to_list
      (Array.map
         (fun node ->
           List.map
             (fun (r : Xmsg.request) -> r.Xmsg.rid)
             (Replica.executed (SimNode.replica node)))
         nodes)
  in
  let longest =
    List.fold_left
      (fun acc h -> if List.length h > List.length acc then h else acc)
      [] histories
  in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _, [] -> false
  in
  assert (List.for_all (fun h -> is_prefix h longest) histories);
  longest

let test_parity_sim_vs_tcp () =
  let n = 4 and f = 1 and requests = 3 in
  let sim_prefix = sim_committed_prefix ~n ~f ~requests in
  Alcotest.(check (list int))
    "sim transport commits the full workload"
    (List.init requests (fun i -> i))
    sim_prefix;
  let report = Cluster.run ~seed:11L ~requests ~n ~f () in
  Alcotest.(check int) "tcp commits the same requests" requests report.Cluster.committed;
  Alcotest.(check bool) "tcp prefixes agree" true report.Cluster.prefix_agreement;
  Alcotest.(check int)
    "zero monitor violations" 0
    (List.length report.Cluster.violations)

(* ------------------------------------------------------------------ *)
(* End-to-end: nemesis loss + latency, and kill-then-restart rejoin *)

let test_cluster_under_loss_and_latency () =
  let schedule =
    [
      Fault.at ~start:(ms 0) ~stop:(ms 8000) (Fault.Omit { src = 3; dst = 0 });
      Fault.at ~start:(ms 0) ~stop:(ms 8000)
        (Fault.Delay { src = 3; dst = 1; by = ms 20 });
    ]
  in
  let report = Cluster.run ~seed:5L ~requests:3 ~schedule ~n:4 ~f:1 () in
  Alcotest.(check bool)
    "all requests committed despite faults" true
    (report.Cluster.committed = 3);
  Alcotest.(check bool) "prefixes agree" true report.Cluster.prefix_agreement;
  Alcotest.(check int)
    "zero monitor violations" 0
    (List.length report.Cluster.violations);
  Alcotest.(check bool)
    "nemesis actually armed" true
    (report.Cluster.nemesis_installed >= 2);
  let dropped =
    Array.fold_left
      (fun acc (s : Tcp.stats) -> acc + s.Tcp.nemesis_dropped)
      0 report.Cluster.stats
  in
  Alcotest.(check bool) "loss policy dropped frames" true (dropped > 0)

let test_cluster_kill_restart_rejoins () =
  let schedule =
    [ Fault.at ~start:(ms 300) ~stop:(ms 1200) (Fault.CrashAmnesia 2) ]
  in
  let report =
    Cluster.run ~seed:23L ~requests:3 ~request_timeout_ms:6000 ~schedule
      ~duration_ms:2500 ~n:4 ~f:1 ()
  in
  Alcotest.(check bool)
    "requests committed around the crash" true
    (report.Cluster.committed >= 2);
  Alcotest.(check bool) "prefixes agree" true report.Cluster.prefix_agreement;
  Alcotest.(check int)
    "zero monitor violations" 0
    (List.length report.Cluster.violations);
  Alcotest.(check bool)
    "the killed replica rejoined through the recovery plane" true
    (report.Cluster.recoveries_completed >= 1);
  let reconnects =
    Array.fold_left
      (fun acc (s : Tcp.stats) -> acc + s.Tcp.reconnects)
      0 report.Cluster.stats
  in
  Alcotest.(check bool) "socket death forced reconnects" true (reconnects > 0)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "mailbox",
        [
          Alcotest.test_case "drop-oldest shedding" `Quick test_mailbox_shed_oldest;
          Alcotest.test_case "close drains then stops" `Quick test_mailbox_close_drains;
          Alcotest.test_case "cross-thread order" `Quick test_mailbox_cross_thread;
        ] );
      ( "supervisor",
        [ Alcotest.test_case "restart budget" `Quick test_supervisor_restart_budget ] );
      ( "frame",
        [
          qt frame_roundtrip;
          qt frame_truncation_rejected;
          qt frame_corruption_rejected;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "round-trips every constructor" `Quick
            test_envelope_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_envelope_rejects_garbage;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "corrupt frame quarantines connection, not sender"
            `Quick test_corrupt_frame_quarantines_connection_not_sender;
          Alcotest.test_case "dedup watermark + incarnation reset" `Quick
            test_dedup_watermark_and_incarnation;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "sim-vs-tcp parity" `Slow test_parity_sim_vs_tcp;
          Alcotest.test_case "commits under loss+latency nemesis" `Slow
            test_cluster_under_loss_and_latency;
          Alcotest.test_case "kill-then-restart rejoins" `Slow
            test_cluster_kill_restart_rejoins;
        ] );
    ]
