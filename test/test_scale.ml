(* Scaling-core properties: the bitset-backed matrix rows, the delta-state
   gossip engine, the incremental suspect view, and the bench-regression
   gate. *)

module Matrix = Qs_core.Suspicion_matrix
module Delta = Qs_core.Delta
module View = Qs_core.Suspect_view
module Indep = Qs_graph.Indep
module Json = Qs_obs.Json
module Gate = Qs_obs.Bench_gate
module Prng = Qs_stdx.Prng

let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sparse (bitset) rows vs dense rows: the two merge entry points are the
   same join. *)

let random_matrix rng n =
  let m = Matrix.create n in
  for _ = 1 to Prng.int_in rng 0 10 do
    let i = Prng.int rng n and j = Prng.int rng n in
    if i <> j then Matrix.record m ~suspector:i ~suspect:j ~epoch:(Prng.int_in rng 1 5)
  done;
  m

let random_dense_row rng n ~owner =
  Array.init n (fun k -> if k = owner then 0 else Prng.int_in rng 0 4)

let row_law name law =
  QCheck.Test.make ~name ~count:200
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let n = Prng.int_in rng 2 6 in
      let owner = Prng.int rng n in
      law rng n owner (random_matrix rng n))

let prop_sparse_row_roundtrip =
  row_law "sparse_row/merge_cells reproduces the row" (fun _rng n owner m ->
      let fresh = Matrix.create n in
      ignore (Matrix.merge_cells fresh ~owner (Matrix.sparse_row m owner));
      Matrix.row fresh owner = Matrix.row m owner)

let prop_merge_cells_matches_merge_row =
  row_law "merge_cells is merge_row on the nonzero cells" (fun rng n owner m ->
      let dense = random_dense_row rng n ~owner in
      let sparse =
        Array.of_list
          (List.filter_map
             (fun k -> if dense.(k) > 0 then Some (k, dense.(k)) else None)
             (List.init n Fun.id))
      in
      let via_row = Matrix.copy m and via_cells = Matrix.copy m in
      let c1 = Matrix.merge_row via_row ~owner dense in
      let c2 = Matrix.merge_cells via_cells ~owner sparse in
      c1 = c2 && Matrix.equal via_row via_cells)

let prop_row_version_tracks_change =
  row_law "row_version bumps iff the merge changed the row" (fun rng n owner m ->
      let dense = random_dense_row rng n ~owner in
      let v0 = Matrix.row_version m owner in
      let changed = Matrix.merge_row m ~owner dense in
      let v1 = Matrix.row_version m owner in
      if changed then v1 > v0 else v1 = v0)

let prop_iter_nonzero_matches_dense =
  row_law "iter_nonzero visits exactly the nonzero cells" (fun _rng n _owner m ->
      let seen = Hashtbl.create 16 in
      Matrix.iter_nonzero m (fun ~suspector ~suspect ~epoch ->
          Hashtbl.replace seen (suspector, suspect) epoch);
      let ok = ref true in
      for l = 0 to n - 1 do
        for k = 0 to n - 1 do
          let cell = Matrix.get m ~suspector:l ~suspect:k in
          let visited = Hashtbl.find_opt seen (l, k) in
          if cell = 0 then ok := !ok && visited = None
          else ok := !ok && visited = Some cell
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Delta gossip vs full state: two nodes recording independently and
   gossiping deltas over a network that drops, duplicates and reorders
   must still converge to the full-state join once the link behaves. *)

type wire =
  | Pkt of int * Delta.packet  (* destination node, packet *)
  | Ack of int * int * Delta.ack  (* destination node, acking peer, ack *)

let prop_delta_convergence =
  QCheck.Test.make ~name:"delta gossip converges under drop/dup/reorder"
    ~count:150
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let n = Prng.int_in rng 3 6 in
      let a = Matrix.create n and b = Matrix.create n in
      let ea = Delta.create ~me:0 a and eb = Delta.create ~me:1 b in
      let engine = function 0 -> ea | _ -> eb in
      let in_flight = ref [] in
      let push w = in_flight := w :: !in_flight in
      let deliver w =
        match w with
        | Pkt (dst, p) ->
          let _changed, ack = Delta.apply (engine dst) p in
          push (Ack (1 - dst, dst, ack))
        | Ack (dst, peer, ack) -> Delta.apply_ack (engine dst) ~peer ack
      in
      for _ = 1 to Prng.int_in rng 10 60 do
        match Prng.int rng 4 with
        | 0 ->
          (* record a fresh suspicion on one side *)
          let m = if Prng.int rng 2 = 0 then a else b in
          let i = Prng.int rng n and j = Prng.int rng n in
          if i <> j then
            Matrix.record m ~suspector:i ~suspect:j ~epoch:(Prng.int_in rng 1 5)
        | 1 ->
          (* gossip tick on one side *)
          let src = Prng.int rng 2 in
          (match Delta.make_packet (engine src) ~peer:(1 - src) with
           | None -> ()
           | Some p -> push (Pkt (1 - src, p)))
        | _ -> (
          (* deliver a random in-flight message: reorder by picking
             anywhere in the queue; sometimes drop it, sometimes deliver
             it twice *)
          match !in_flight with
          | [] -> ()
          | q ->
            let i = Prng.int rng (List.length q) in
            let w = List.nth q i in
            in_flight := List.filteri (fun j _ -> j <> i) q;
            (match Prng.int rng 4 with
             | 0 -> () (* dropped *)
             | 1 ->
               deliver w;
               deliver w
             | _ -> deliver w))
      done;
      (* The link heals: reliable in-order rounds until both engines have
         nothing left to ship. *)
      in_flight := [];
      let quiet = ref false in
      let rounds = ref 0 in
      while (not !quiet) && !rounds < 10 do
        incr rounds;
        quiet := true;
        List.iter
          (fun src ->
            match Delta.make_packet (engine src) ~peer:(1 - src) with
            | None -> ()
            | Some p ->
              quiet := false;
              let _changed, ack = Delta.apply (engine (1 - src)) p in
              Delta.apply_ack (engine src) ~peer:(1 - src) ack)
          [ 0; 1 ]
      done;
      let union = Matrix.copy a in
      ignore (Matrix.merge union b);
      !quiet && Matrix.equal a b && Matrix.equal a union)

let prop_idle_packet_is_none =
  QCheck.Test.make ~name:"converged peers exchange no further packets" ~count:100
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let n = Prng.int_in rng 2 6 in
      let a = random_matrix rng n in
      let b = Matrix.create n in
      let ea = Delta.create ~me:0 a in
      let eb = Delta.create ~me:1 b in
      (match Delta.make_packet ea ~peer:1 with
       | None -> ()
       | Some p ->
         let _changed, ack = Delta.apply eb p in
         Delta.apply_ack ea ~peer:1 ack);
      Delta.make_packet ea ~peer:1 = None)

(* ------------------------------------------------------------------ *)
(* Incremental suspect view vs the from-scratch pipeline, under random
   merge sequences, epoch changes and a blit restore. *)

let scratch_agrees m view ~epoch =
  View.sync view ~epoch;
  let g = Matrix.suspect_graph m ~epoch in
  let n = Matrix.n m in
  View.mis_total view = Indep.max_independent_set_size g
  && List.for_all
       (fun q ->
         View.lex_first view q = Indep.lex_first_independent_set g q
         && View.feasible view q = Indep.exists_independent_set g q)
       (List.init (n + 1) Fun.id)

let prop_view_matches_scratch =
  QCheck.Test.make ~name:"incremental view = from-scratch on random merges"
    ~count:150
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.of_int seed in
      let n = Prng.int_in rng 2 7 in
      let m = Matrix.create n in
      let view = View.create m ~epoch:1 in
      let epoch = ref 1 in
      let ok = ref true in
      let snapshot = ref None in
      for _ = 1 to Prng.int_in rng 5 25 do
        (match Prng.int rng 6 with
         | 0 -> epoch := !epoch + 1 (* epoch advance: view must rebuild *)
         | 1 -> snapshot := Some (Matrix.copy m)
         | 2 -> (
           (* restore an older snapshot: cells go DOWN, the watcher's
              on_reset must mark the view stale *)
           match !snapshot with
           | Some s -> Matrix.blit ~src:s ~dst:m
           | None -> ())
         | _ ->
           let other = random_matrix rng n in
           ignore (Matrix.merge m other));
        ok := !ok && scratch_agrees m view ~epoch:!epoch
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Bench gate: a healthy run passes against its own derived baseline, and
   every gated regression class fails — in particular an injected 2×
   slowdown at the largest n. *)

let point ~n ?(full = 4096) ?(sync = 65) ?(idle = 0) ?(alloc = 0.0)
    ?(agrees = true) ~select () =
  Json.Obj
    [
      ("n", Json.Int n);
      ("f", Json.Int 4);
      ("merge_ops_per_sec", Json.Float (select *. 10.0));
      ("select_ops_per_sec", Json.Float select);
      ("full_push_bytes", Json.Int full);
      ("delta_sync_bytes", Json.Int sync);
      ("delta_idle_bytes", Json.Int idle);
      ("idle_alloc_per_packet", Json.Float alloc);
      ("lex_agrees", Json.Bool agrees);
      ("mis_agrees", Json.Bool agrees);
      ("peer_converged", Json.Bool agrees);
    ]

let churn_point ?(availability = 1.0) ?(consistent = true) () =
  Json.Obj
    [
      ("n", Json.Int 64);
      ("f", Json.Int 4);
      ("rounds", Json.Int 12);
      ("joins", Json.Int 4);
      ("leaves", Json.Int 7);
      ("ejects", Json.Int 1);
      ("availability", Json.Float availability);
      ("quorum_changes", Json.Int 12);
      ("reconfig_ops_per_sec", Json.Float 17_000.0);
      ("remap_consistent", Json.Bool consistent);
      ("departed_clean", Json.Bool consistent);
    ]

let policy_point ~policy ?(max_exposure = 1) ?(outages = 0)
    ?(availability = 1.0) ?(quorum_changes = 5) ?(clean = true) () =
  Json.Obj
    [
      ("policy", Json.String policy);
      ("standing", Json.String "{0,2,4,6,8}");
      ("max_exposure", Json.Int max_exposure);
      ("outages", Json.Int outages);
      ("availability", Json.Float availability);
      ("quorum_changes", Json.Int quorum_changes);
      ("repairs_clean", Json.Bool clean);
      ("agreement", Json.Bool clean);
      ("t3_ok", Json.Bool clean);
    ]

(* Mirrors the E18 shape: lex loses quorums to region loss, the cap-1
   policy never does. *)
let policy_points ?(diverse_availability = 1.0) ?(diverse_changes = 5)
    ?(clean = true) () =
  [
    policy_point ~policy:"lex" ~max_exposure:2 ~outages:2 ~availability:0.6
      ~quorum_changes:3 ~clean ();
    policy_point ~policy:"lottery" ~max_exposure:2 ~outages:1 ~availability:0.8
      ~quorum_changes:4 ~clean ();
    policy_point ~policy:"diverse" ~availability:diverse_availability
      ~quorum_changes:diverse_changes ~clean ();
  ]

let policy_section ?points ?(ok = true) ?(pairs = 8) ?(sampled_ok = true)
    ?(sampled_pairs = 10) () =
  let points = match points with Some p -> p | None -> policy_points () in
  Json.Obj
    [
      ("points", Json.List points);
      ( "intersection",
        Json.Obj
          [
            ("groups", Json.Int 6);
            ("pairs", Json.Int pairs);
            ("ok", Json.Bool ok);
            ("sampled_pairs", Json.Int sampled_pairs);
            ("sampled_ok", Json.Bool sampled_ok);
          ] );
    ]

let bench ?(scaling = []) ?(churn = [ churn_point () ]) ?policy () =
  Json.Obj
    ([
       ("schema", Json.String "qsel-bench/1");
       ("quick", Json.Bool true);
       ("experiments_ok", Json.Bool true);
       ( "commission",
         Json.List
           [
             Json.Obj
               [
                 ("stack", Json.String "pbft");
                 ("proofs", Json.Int 7);
                 ("forgeries", Json.Int 174);
                 ("violations", Json.Int 0);
               ];
           ] );
       ("scaling", Json.List scaling);
       ("churn", Json.List churn);
     ]
    @ (match policy with None -> [] | Some p -> [ ("policy", p) ])
    @ [ ("results", Json.List []) ])

let scaling_healthy () =
  [ point ~n:64 ~select:400_000.0 (); point ~n:1024 ~select:10_000.0 () ]

let healthy () = bench ~scaling:(scaling_healthy ()) ()

let gate current baseline = Gate.passed (Gate.check ~current ~baseline)

let test_gate_passes_healthy () =
  let b = Gate.derive_baseline (healthy ()) in
  check_bool "healthy run passes" true (gate (healthy ()) b)

let test_gate_fails_2x_slowdown () =
  let b = Gate.derive_baseline (healthy ()) in
  (* 2× slower selection at n=1024: absolute numbers are machine-relative,
     but the 64/1024 ratio doubles — past the 1.75× cap. *)
  let slowed =
    bench
      ~scaling:
        [ point ~n:64 ~select:400_000.0 (); point ~n:1024 ~select:5_000.0 () ]
      ()
  in
  check_bool "2x slowdown at n=1024 fails" false (gate slowed b);
  (* A uniform 2× slowdown (slower machine) leaves the ratio alone and
     passes: the gate keys on code properties, not the runner. *)
  let slower_machine =
    bench
      ~scaling:
        [ point ~n:64 ~select:200_000.0 (); point ~n:1024 ~select:5_000.0 () ]
      ()
  in
  check_bool "uniformly slower machine still passes" true (gate slower_machine b)

let test_gate_fails_byte_regression () =
  let b = Gate.derive_baseline (healthy ()) in
  let bloated =
    bench
      ~scaling:
        [
          point ~n:64 ~select:400_000.0 ();
          point ~n:1024 ~sync:130 ~select:10_000.0 ();
        ]
      ()
  in
  check_bool "2x delta bytes fails" false (gate bloated b)

let test_gate_fails_idle_regressions () =
  let b = Gate.derive_baseline (healthy ()) in
  let chatty =
    bench
      ~scaling:
        [
          point ~n:64 ~select:400_000.0 ();
          point ~n:1024 ~idle:65 ~select:10_000.0 ();
        ]
      ()
  in
  check_bool "nonzero idle tick fails" false (gate chatty b);
  let allocating =
    bench
      ~scaling:
        [
          point ~n:64 ~select:400_000.0 ();
          point ~n:1024 ~alloc:8192.0 ~select:10_000.0 ();
        ]
      ()
  in
  check_bool "per-packet row copies fail" false (gate allocating b)

let test_gate_fails_disagreement () =
  let b = Gate.derive_baseline (healthy ()) in
  let wrong =
    bench
      ~scaling:
        [
          point ~n:64 ~select:400_000.0 ();
          point ~n:1024 ~agrees:false ~select:10_000.0 ();
        ]
      ()
  in
  check_bool "incremental/scratch disagreement fails" false (gate wrong b)

let test_gate_fails_churn_regression () =
  let b = Gate.derive_baseline (healthy ()) in
  let unavailable =
    bench ~scaling:(scaling_healthy ())
      ~churn:[ churn_point ~availability:0.9 () ]
      ()
  in
  check_bool "quorum unavailability after a change fails" false
    (gate unavailable b);
  let inconsistent =
    bench ~scaling:(scaling_healthy ())
      ~churn:[ churn_point ~consistent:false () ]
      ()
  in
  check_bool "remap/rebuild divergence fails" false (gate inconsistent b)

let test_gate_policy_opt_in () =
  (* A pre-policy baseline gates nothing about the section; a baseline
     derived from a run carrying one round-trips and passes. *)
  let with_policy =
    bench ~scaling:(scaling_healthy ()) ~policy:(policy_section ()) ()
  in
  check_bool "pre-policy baseline still passes" true
    (gate with_policy (Gate.derive_baseline (healthy ())));
  check_bool "derived policy baseline passes" true
    (gate with_policy (Gate.derive_baseline with_policy))

let test_gate_fails_policy_drift () =
  let with_policy =
    bench ~scaling:(scaling_healthy ()) ~policy:(policy_section ()) ()
  in
  let b = Gate.derive_baseline with_policy in
  let degraded =
    bench ~scaling:(scaling_healthy ())
      ~policy:
        (policy_section ~points:(policy_points ~diverse_availability:0.8 ()) ())
      ()
  in
  check_bool "diverse availability drop fails" false (gate degraded b);
  let churny =
    bench ~scaling:(scaling_healthy ())
      ~policy:(policy_section ~points:(policy_points ~diverse_changes:9 ()) ())
      ()
  in
  check_bool "quorum-change count drift fails" false (gate churny b);
  let dirty =
    bench ~scaling:(scaling_healthy ())
      ~policy:(policy_section ~points:(policy_points ~clean:false ()) ())
      ()
  in
  check_bool "repair/agreement/t3 flags fail" false (gate dirty b);
  let missing =
    bench ~scaling:(scaling_healthy ())
      ~policy:
        (policy_section ~points:[ policy_point ~policy:"lex" ~max_exposure:2
                                    ~outages:2 ~availability:0.6
                                    ~quorum_changes:3 () ] ())
      ()
  in
  check_bool "missing policy point fails" false (gate missing b)

let test_gate_fails_policy_intersection () =
  let with_policy =
    bench ~scaling:(scaling_healthy ()) ~policy:(policy_section ()) ()
  in
  let b = Gate.derive_baseline with_policy in
  (* The intersection verdicts gate from the current run alone: a failed
     group, a vacuous sweep, or a broken sampled point all reject even
     though none of them is pinned in the baseline. *)
  let broken =
    bench ~scaling:(scaling_healthy ()) ~policy:(policy_section ~ok:false ()) ()
  in
  check_bool "failed cross-policy group fails" false (gate broken b);
  let vacuous =
    bench ~scaling:(scaling_healthy ()) ~policy:(policy_section ~pairs:0 ()) ()
  in
  check_bool "zero compared pairs fails" false (gate vacuous b);
  let sampled =
    bench ~scaling:(scaling_healthy ())
      ~policy:(policy_section ~sampled_ok:false ())
      ()
  in
  check_bool "sampled n=1024 failure fails" false (gate sampled b)

let test_gate_update_baseline_ratchet () =
  (* The escape hatch: deriving a fresh baseline from the regressed run
     makes the gate pass again — that is what --update-baseline commits. *)
  let slowed =
    bench
      ~scaling:
        [ point ~n:64 ~select:400_000.0 (); point ~n:1024 ~select:5_000.0 () ]
      ()
  in
  check_bool "old baseline rejects" false
    (gate slowed (Gate.derive_baseline (healthy ())));
  check_bool "re-derived baseline accepts" true
    (gate slowed (Gate.derive_baseline slowed))

let test_gate_real_baseline_format () =
  (* The committed baseline must stay parseable and structurally what the
     gate expects: a full check against the real file, using a current
     document derived back from it would require a bench run; instead just
     assert the schema and tolerances decode. *)
  (* Under [dune runtest] the cwd is [_build/default/test] (the declared
     dep materializes the file one level up); under [dune exec] from the
     repo root it is the source tree. *)
  let path =
    List.find Sys.file_exists
      [ "../bench/baseline.json"; "bench/baseline.json" ]
  in
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.parse s with
  | Error e -> Alcotest.failf "bench/baseline.json does not parse: %s" e
  | Ok j ->
    check_bool "baseline schema" true
      (Json.member "schema" j = Some (Json.String "qsel-baseline/1"));
    check_bool "has tolerances" true (Json.member "tolerances" j <> None);
    check_bool "has scaling" true (Json.member "scaling" j <> None)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_sparse_row_roundtrip;
      prop_merge_cells_matches_merge_row;
      prop_row_version_tracks_change;
      prop_iter_nonzero_matches_dense;
      prop_delta_convergence;
      prop_idle_packet_is_none;
      prop_view_matches_scratch;
    ]

let () =
  Alcotest.run "scale"
    [
      ("properties", qsuite);
      ( "bench-gate",
        [
          Alcotest.test_case "healthy passes" `Quick test_gate_passes_healthy;
          Alcotest.test_case "2x slowdown fails" `Quick test_gate_fails_2x_slowdown;
          Alcotest.test_case "byte regression fails" `Quick
            test_gate_fails_byte_regression;
          Alcotest.test_case "idle regressions fail" `Quick
            test_gate_fails_idle_regressions;
          Alcotest.test_case "disagreement fails" `Quick
            test_gate_fails_disagreement;
          Alcotest.test_case "churn regression fails" `Quick
            test_gate_fails_churn_regression;
          Alcotest.test_case "policy section opt-in" `Quick
            test_gate_policy_opt_in;
          Alcotest.test_case "policy drift fails" `Quick
            test_gate_fails_policy_drift;
          Alcotest.test_case "policy intersection fails" `Quick
            test_gate_fails_policy_intersection;
          Alcotest.test_case "update-baseline ratchet" `Quick
            test_gate_update_baseline_ratchet;
          Alcotest.test_case "committed baseline well-formed" `Quick
            test_gate_real_baseline_format;
        ] );
    ]
