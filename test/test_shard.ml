(* Domain-sharded exploration tests: byte-identical fuzzer reports across
   --jobs for every protocol instance, cross-jobs agreement of the sharded
   IDDFS with the sequential explorer on the partition-independent
   quantities, and the per-shard stat plumbing. On OCaml 4.14 the
   Domainpool shim runs every shard sequentially, so these tests also pin
   the fallback path. *)

module Engine = Qs_mc.Engine
module Shard = Qs_mc.Shard
module Schedule = Qs_mc.Schedule
module MC = Qs_harness.Modelcheck
module Json = Qs_obs.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let render r = Json.render (Engine.report_to_json r)

let quorum_n3_spec =
  { (MC.default_spec MC.Quorum) with MC.n = 3; injections = [ (0, [ 2 ]) ] }

let amnesia_gossip_spec =
  { (MC.default_spec MC.Quorum) with MC.n = 3; injections = [ (0, [ 2 ]) ]; amnesia = [ 1 ] }

(* ------------------------------------------------------------------ *)
(* Random mode: byte-identical reports across jobs *)

(* Satellite: the sharded fuzzer is a pure function of (seed, iters) — the
   report JSON must not change with the worker count, for every protocol
   instance the checker drives. *)
let test_random_jobs_byte_identical () =
  let instances =
    [
      ("quorum", MC.default_spec MC.Quorum, 20);
      ("follower", MC.default_spec MC.Follower, 20);
      ("xpaxos", MC.default_spec MC.Xpaxos, 8);
      ("xpaxos-enum", MC.default_spec MC.Xpaxos_enum, 8);
      ("quorum-amnesia", amnesia_gossip_spec, 20);
    ]
  in
  List.iter
    (fun (name, spec, iters) ->
      let run jobs =
        Shard.random ~jobs ~seed:71 ~iters (fun () -> MC.make spec)
      in
      let a = run 1 and b = run 4 in
      check_string (name ^ ": report identical across jobs") (render a.Shard.report)
        (render b.Shard.report);
      check_string (name ^ ": same visited set") a.Shard.states_digest
        b.Shard.states_digest)
    instances

let test_random_walks_reach_quiescence () =
  let r =
    Shard.random ~jobs:2 ~seed:4242 ~iters:50 (fun () ->
        MC.make amnesia_gossip_spec)
  in
  check_int "every walk reaches quiescence" 50 r.Shard.report.Engine.quiescent;
  check_int "no violations" 0 (List.length r.Shard.report.Engine.violations)

(* The seeded bug must be found at the same walk with the same shrunk
   schedule regardless of jobs: the merge keeps the lowest violating walk
   index, not whichever worker won the race. *)
let test_random_seeded_bug_jobs_identical () =
  let spec = { (MC.default_spec MC.Quorum) with MC.seeded_bug = true } in
  let run jobs = Shard.random ~jobs ~seed:5 ~iters:20 (fun () -> MC.make spec) in
  let a = run 1 and b = run 4 in
  Qs_core.Quorum_select.test_buggy_quorum_size := false;
  check_bool "bug found" true
    (List.exists
       (fun v -> v.Engine.check = "quorum-size")
       a.Shard.report.Engine.violations);
  check_string "identical counterexample report" (render a.Shard.report)
    (render b.Shard.report)

(* Per-shard stats must account for exactly the executed walks. *)
let test_random_shard_stats_account () =
  let r =
    Shard.random ~jobs:3 ~seed:7 ~iters:21 (fun () ->
        MC.make (MC.default_spec MC.Quorum))
  in
  let tasks = List.fold_left (fun a s -> a + s.Shard.tasks) 0 r.Shard.shards in
  check_int "three shard stats" 3 (List.length r.Shard.shards);
  check_int "all 21 walks executed (no violation, no skips)" 21 tasks;
  List.iter
    (fun s -> check_bool "elapsed measured" true (s.Shard.elapsed_s >= 0.0))
    r.Shard.shards

(* ------------------------------------------------------------------ *)
(* Exhaustive mode: agreement across jobs and with the sequential engine *)

let toy () =
  (* Same 3-commuting-deliveries toy as test_mc: visited=8, quiescent=1. *)
  let delivered = ref [] in
  let enabled () =
    List.filter_map
      (fun i ->
        if List.mem i !delivered then None
        else
          Some
            {
              Engine.choice = Schedule.Deliver i;
              canon = "m" ^ string_of_int i;
              receiver = Some i;
            })
      [ 0; 1; 2 ]
  in
  {
    Engine.reset = (fun () -> delivered := []);
    enabled;
    apply =
      (fun c ->
        match c with
        | Schedule.Deliver i when not (List.mem i !delivered) ->
          delivered := i :: !delivered;
          true
        | _ -> false);
    fingerprint =
      (fun () ->
        String.concat "," (List.map string_of_int (List.sort compare !delivered)));
    violations = (fun () -> []);
    quiescent_violations = (fun () -> []);
    snapshot = None;
    symmetry = None;
  }

let test_explore_toy_matches_engine () =
  let seq = Engine.explore ~depth:5 (toy ()) in
  List.iter
    (fun jobs ->
      let r = Shard.explore ~jobs ~depth:5 toy in
      check_int "visited" seq.Engine.visited r.Shard.report.Engine.visited;
      check_int "quiescent" seq.Engine.quiescent r.Shard.report.Engine.quiescent;
      check_bool "complete" seq.Engine.complete r.Shard.report.Engine.complete)
    [ 1; 2; 3 ]

(* The partition-independent quantities — visited set, quiescent set,
   completeness, violations — agree between any two worker counts, and the
   visited count matches the sequential explorer's pinned value. *)
let test_explore_quorum_jobs_agree () =
  let mk () = MC.make quorum_n3_spec in
  let a = Shard.explore ~jobs:1 ~depth:12 mk in
  let b = Shard.explore ~jobs:2 ~depth:12 mk in
  let c = Shard.explore ~jobs:3 ~depth:12 mk in
  check_int "visited matches sequential pin" 1135 a.Shard.report.Engine.visited;
  check_int "jobs 2 visited" 1135 b.Shard.report.Engine.visited;
  check_int "jobs 3 visited" 1135 c.Shard.report.Engine.visited;
  check_string "jobs 1/2 same state set" a.Shard.states_digest b.Shard.states_digest;
  check_string "jobs 2/3 same state set" b.Shard.states_digest c.Shard.states_digest;
  check_int "quiescent agree" a.Shard.report.Engine.quiescent
    b.Shard.report.Engine.quiescent;
  check_bool "complete" true a.Shard.report.Engine.complete;
  check_bool "complete at 2" true b.Shard.report.Engine.complete;
  check_bool "complete at 3" true c.Shard.report.Engine.complete;
  check_int "no violations" 0 (List.length b.Shard.report.Engine.violations)

let test_explore_amnesia_jobs_agree () =
  let mk () = MC.make amnesia_gossip_spec in
  let a = Shard.explore ~jobs:1 ~depth:6 mk in
  let b = Shard.explore ~jobs:2 ~depth:6 mk in
  check_int "visited matches sequential pin" 2659 a.Shard.report.Engine.visited;
  check_string "same state set" a.Shard.states_digest b.Shard.states_digest;
  check_bool "bounded" false b.Shard.report.Engine.complete

(* Violations found by the sharded explorer shrink to the same minimal
   schedule as the sequential one. *)
let test_explore_seeded_bug_jobs_agree () =
  let spec = { (MC.default_spec MC.Quorum) with MC.seeded_bug = true } in
  let mk () = MC.make spec in
  let seq = Engine.explore ~depth:3 (mk ()) in
  let par = Shard.explore ~jobs:2 ~depth:3 mk in
  Qs_core.Quorum_select.test_buggy_quorum_size := false;
  let find r =
    match
      List.find_opt (fun v -> v.Engine.check = "quorum-size") r.Engine.violations
    with
    | Some v -> v
    | None -> Alcotest.fail "seeded quorum-size bug not found"
  in
  let vs = find seq and vp = find par.Shard.report in
  check_string "same shrunk schedule" (Schedule.to_string vs.Engine.schedule)
    (Schedule.to_string vp.Engine.schedule)

(* ------------------------------------------------------------------ *)
(* Symmetry reduction *)

module SM = Qs_core.Suspicion_matrix

let perms_of n =
  let rec go acc rest =
    match rest with
    | [] -> [ List.rev acc ]
    | _ ->
      List.concat_map
        (fun x -> go (x :: acc) (List.filter (fun y -> y <> x) rest))
        rest
  in
  go [] (List.init n Fun.id)

let render_matrix m = Format.asprintf "%a" SM.pp m

(* Minimum over every pid bijection of the permuted render — the matrix-level
   analogue of the canonical state fingerprint. *)
let canon_matrix m =
  let n = SM.n m in
  List.fold_left
    (fun best p ->
      let arr = Array.of_list p in
      let r = render_matrix (SM.remap m ~n ~of_new:(fun i -> arr.(i))) in
      match best with Some b when String.compare b r <= 0 -> best | _ -> Some r)
    None (perms_of n)
  |> Option.get

(* Satellite: the canonical render is constant on permutation orbits, and the
   identity remap reproduces the original render byte-for-byte (remap/pp
   round-trips are canonical). *)
let prop_matrix_canon_perm_invariant =
  QCheck.Test.make ~name:"canonical matrix render is permutation-invariant"
    ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 10)
           (triple (int_bound 3) (int_bound 3) (int_range 1 3)))
        (int_bound 23))
    (fun (cells, pidx) ->
      let m = SM.create 4 in
      List.iter
        (fun (i, j, e) ->
          if i <> j then SM.record m ~suspector:i ~suspect:j ~epoch:e)
        cells;
      let p = Array.of_list (List.nth (perms_of 4) pidx) in
      let pm = SM.remap m ~n:4 ~of_new:(fun i -> p.(i)) in
      String.equal (canon_matrix pm) (canon_matrix m)
      && String.equal (render_matrix (SM.remap m ~n:4 ~of_new:Fun.id)) (render_matrix m))

let test_fingerprint_perm_identity () =
  let module QS = Qs_core.Quorum_select in
  let cfg = { QS.n = 4; f = 1 } in
  let auth = Qs_crypto.Auth.create 4 in
  let node =
    QS.create cfg ~me:0 ~auth ~send:(fun _ -> ()) ~on_quorum:(fun _ -> ()) ()
  in
  QS.handle_suspected node [ 3 ];
  check_string "identity perm reproduces the plain fingerprint"
    (QS.fingerprint node)
    (QS.fingerprint_perm node ~perm:Fun.id)

(* The distinguished pids of the default quorum instance are {0, 3}
   (injection source and target); 1 and 2 are interchangeable. Delivering
   the injected update to 1 vs to 2 yields sibling states with different
   plain fingerprints but the same symmetry-canonical one — the orbit the
   sym explorer collapses. *)
let test_sym_sibling_states_equal_canon () =
  let system = MC.make (MC.default_spec MC.Quorum) in
  system.Engine.reset ();
  let root = system.Engine.enabled () in
  let to_p p =
    match List.find_opt (fun ci -> ci.Engine.receiver = Some p) root with
    | Some ci -> ci
    | None -> Alcotest.fail (Printf.sprintf "no root delivery to %d" p)
  in
  let state_after ci =
    system.Engine.reset ();
    ignore (system.Engine.apply ci.Engine.choice);
    (system.Engine.fingerprint (), (Option.get system.Engine.symmetry) ())
  in
  let fp1, c1 = state_after (to_p 1) in
  let fp2, c2 = state_after (to_p 2) in
  check_bool "plain fingerprints differ" true (not (String.equal fp1 fp2));
  check_string "canonical fingerprints agree" c1 c2;
  check_bool "canon is the orbit minimum" true
    (String.compare c1 fp1 <= 0 && String.compare c2 fp2 <= 0)

(* Pinned orbit collapse at n=4: same depth, strictly fewer states, no
   violations introduced, and the sharded explorer agrees. *)
let test_sym_explore_quorum_n4 () =
  let spec = MC.default_spec MC.Quorum in
  let plain = Engine.explore ~depth:4 (MC.make spec) in
  let sym = Engine.explore ~sym:true ~depth:4 (MC.make spec) in
  check_int "plain visited pin" 509 plain.Engine.visited;
  check_int "sym visited pin" 272 sym.Engine.visited;
  check_int "no violations" 0 (List.length sym.Engine.violations);
  let sh = Shard.explore ~jobs:2 ~sym:true ~depth:4 (fun () -> MC.make spec) in
  check_int "sharded sym agrees" 272 sh.Shard.report.Engine.visited

(* Acceptance: symmetry lets the exhaustive quorum instance run at n=5
   within the n=4 state budget (509 states at the same depth). The free
   orbit {1,2,4} has order 3! = 6; the canonical fingerprint collapses
   1488 plain states to 335. *)
let test_sym_explore_quorum_n5_within_budget () =
  let spec = { (MC.default_spec MC.Quorum) with MC.n = 5 } in
  let plain = Engine.explore ~depth:4 (MC.make spec) in
  let sym = Engine.explore ~sym:true ~depth:4 (MC.make spec) in
  check_int "n=5 plain visited pin" 1488 plain.Engine.visited;
  check_int "n=5 sym visited pin" 335 sym.Engine.visited;
  check_bool "within the n=4 plain budget" true (sym.Engine.visited < 509);
  check_int "no violations" 0 (List.length sym.Engine.violations)

(* Symmetry must not hide the seeded bug, and the counterexample still
   shrinks to the single-delivery schedule. *)
let test_sym_seeded_bug_found () =
  let spec = { (MC.default_spec MC.Quorum) with MC.seeded_bug = true } in
  let r = Engine.explore ~sym:true ~depth:3 (MC.make spec) in
  Qs_core.Quorum_select.test_buggy_quorum_size := false;
  match
    List.find_opt (fun v -> v.Engine.check = "quorum-size") r.Engine.violations
  with
  | None -> Alcotest.fail "seeded bug hidden by symmetry reduction"
  | Some v ->
    check_string "still shrinks to one delivery" "d0"
      (Schedule.to_string v.Engine.schedule)

(* ------------------------------------------------------------------ *)
(* Shrink memoization *)

(* Satellite: with a snapshotting system, memoized shrinking reaches the
   same minimum with the same oracle calls but strictly fewer applies —
   candidate replays fast-forward through shared prefixes. *)
let test_shrink_memo_fewer_applies () =
  let spec = { (MC.default_spec MC.Quorum) with MC.seeded_bug = true } in
  let system = MC.make spec in
  (* An 8-step walk that picks the last enabled choice each time: plenty of
     redundant deliveries around the one that trips the seeded bug. *)
  let sched =
    system.Engine.reset ();
    let rec go acc n =
      if n = 0 then List.rev acc
      else
        match system.Engine.enabled () with
        | [] -> List.rev acc
        | cis ->
          let ci = List.nth cis (List.length cis - 1) in
          ignore (system.Engine.apply ci.Engine.choice);
          go (ci.Engine.choice :: acc) (n - 1)
    in
    go [] 8
  in
  check_bool "unshrunk schedule is non-trivial" true (List.length sched > 1);
  check_bool "walk trips the seeded bug" true
    (List.exists
       (fun (check, _) -> check = "quorum-size")
       (Engine.replay system sched));
  let applies = ref 0 in
  let counted =
    { system with Engine.apply = (fun c -> incr applies; system.Engine.apply c) }
  in
  let run memo =
    applies := 0;
    let s, replays = Engine.shrink ~memo counted ~check:"quorum-size" sched in
    (s, replays, !applies)
  in
  let s_memo, r_memo, a_memo = run true in
  let s_plain, r_plain, a_plain = run false in
  Qs_core.Quorum_select.test_buggy_quorum_size := false;
  check_string "same minimal schedule" (Schedule.to_string s_plain)
    (Schedule.to_string s_memo);
  check_int "same oracle calls" r_plain r_memo;
  check_bool
    (Printf.sprintf "memo applies fewer transitions (%d < %d)" a_memo a_plain)
    true
    (a_memo < a_plain)

(* ------------------------------------------------------------------ *)
(* Metrics plumbing *)

let test_observe_records () =
  let m = Qs_obs.Metrics.create () in
  let r =
    Shard.random ~jobs:2 ~seed:3 ~iters:6 (fun () ->
        MC.make (MC.default_spec MC.Quorum))
  in
  Shard.observe ~m r;
  check_bool "steals counter exists" true
    (Qs_obs.Metrics.find_counter ~m "mc_steals_total" <> None);
  check_bool "stalls counter exists" true
    (Qs_obs.Metrics.find_counter ~m "mc_merge_stalls_total" <> None)

let () =
  Alcotest.run "shard"
    [
      ( "random",
        [
          Alcotest.test_case "jobs byte-identical" `Quick test_random_jobs_byte_identical;
          Alcotest.test_case "walks reach quiescence" `Quick test_random_walks_reach_quiescence;
          Alcotest.test_case "seeded bug identical" `Quick test_random_seeded_bug_jobs_identical;
          Alcotest.test_case "shard stats account" `Quick test_random_shard_stats_account;
        ] );
      ( "explore",
        [
          Alcotest.test_case "toy matches engine" `Quick test_explore_toy_matches_engine;
          Alcotest.test_case "quorum n3 jobs agree" `Quick test_explore_quorum_jobs_agree;
          Alcotest.test_case "amnesia jobs agree" `Quick test_explore_amnesia_jobs_agree;
          Alcotest.test_case "seeded bug agrees" `Quick test_explore_seeded_bug_jobs_agree;
        ] );
      ( "symmetry",
        QCheck_alcotest.to_alcotest prop_matrix_canon_perm_invariant
        :: [
             Alcotest.test_case "identity perm fingerprint" `Quick
               test_fingerprint_perm_identity;
             Alcotest.test_case "sibling states same canon" `Quick
               test_sym_sibling_states_equal_canon;
             Alcotest.test_case "n4 orbit collapse pins" `Quick
               test_sym_explore_quorum_n4;
             Alcotest.test_case "n5 within n4 budget" `Quick
               test_sym_explore_quorum_n5_within_budget;
             Alcotest.test_case "seeded bug still found" `Quick
               test_sym_seeded_bug_found;
           ] );
      ( "shrink",
        [
          Alcotest.test_case "memo fewer applies" `Quick
            test_shrink_memo_fewer_applies;
        ] );
      ( "metrics",
        [ Alcotest.test_case "observe records" `Quick test_observe_records ] );
    ]
