(* Simulator tests: event ordering, determinism, network delivery semantics,
   FIFO links, filters, and accounting. *)

open Qs_sim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sim core *)

let test_sim_runs_in_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:30 (fun () -> log := 30 :: !log);
  Sim.schedule sim ~delay:10 (fun () -> log := 10 :: !log);
  Sim.schedule sim ~delay:20 (fun () -> log := 20 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log)

let test_sim_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:5 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:5 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:5 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "insertion order among ties" [ "a"; "b"; "c" ] (List.rev !log)

let test_sim_clock_advances () =
  let sim = Sim.create () in
  let seen = ref (-1) in
  Sim.schedule sim ~delay:42 (fun () -> seen := Sim.now sim);
  Sim.run sim;
  check_int "clock at event time" 42 !seen

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:10 (fun () ->
      log := ("outer", Sim.now sim) :: !log;
      Sim.schedule sim ~delay:5 (fun () -> log := ("inner", Sim.now sim) :: !log));
  Sim.run sim;
  Alcotest.(check (list (pair string int)))
    "nested event at 15"
    [ ("outer", 10); ("inner", 15) ]
    (List.rev !log)

let test_sim_until_limit () =
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Sim.schedule sim ~delay:10 tick
  in
  Sim.schedule sim ~delay:10 tick;
  Sim.run ~until:100 sim;
  check_int "ten ticks within 100" 10 !count;
  check_bool "queue still has the next tick" true (Sim.step sim)

let test_sim_max_events_budget () =
  let sim = Sim.create () in
  let rec forever () = Sim.schedule sim ~delay:1 forever in
  Sim.schedule sim ~delay:1 forever;
  Alcotest.check_raises "budget" Sim.Event_budget_exhausted (fun () ->
      Sim.run ~max_events:1000 sim)

let test_sim_negative_delay_clamped () =
  let sim = Sim.create () in
  let ran = ref false in
  Sim.schedule sim ~delay:(-5) (fun () -> ran := true);
  Sim.run sim;
  check_bool "ran at now" true !ran;
  check_int "clock unchanged" 0 (Sim.now sim)

let test_sim_schedule_at_past_clamped () =
  let sim = Sim.create () in
  let at = ref (-1) in
  Sim.schedule sim ~delay:50 (fun () ->
      Sim.schedule_at sim ~at:10 (fun () -> at := Sim.now sim));
  Sim.run sim;
  check_int "clamped to now" 50 !at

let test_sim_determinism () =
  let run_once seed =
    let sim = Sim.create ~seed () in
    let log = ref [] in
    let rng = Sim.prng sim in
    for _ = 1 to 50 do
      let d = Qs_stdx.Prng.int_in rng 1 100 in
      Sim.schedule sim ~delay:d (fun () -> log := Sim.now sim :: !log)
    done;
    Sim.run sim;
    !log
  in
  check_bool "same seed same trace" true (run_once 9L = run_once 9L);
  check_bool "different seed differs" true (run_once 9L <> run_once 10L)

let test_sim_events_executed () =
  let sim = Sim.create () in
  for i = 1 to 7 do
    Sim.schedule sim ~delay:i (fun () -> ())
  done;
  Sim.run sim;
  check_int "counter" 7 (Sim.events_executed sim)

(* ------------------------------------------------------------------ *)
(* Network *)

let make_net ?(n = 3) ?(fifo = false) ?(delay = Network.Fixed 10) ?seed () =
  let sim = Sim.create ?seed () in
  let net = Network.create ~sim ~n ~delay ~fifo () in
  (sim, net)

let test_net_basic_delivery () =
  let sim, net = make_net () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src m -> got := (src, m, Sim.now sim) :: !got);
  Network.send net ~src:0 ~dst:1 "hello";
  Sim.run sim;
  Alcotest.(check (list (triple int string int))) "delivered with delay"
    [ (0, "hello", 10) ] !got

let test_net_broadcast () =
  let sim, net = make_net () in
  let counts = Array.make 3 0 in
  for i = 0 to 2 do
    Network.set_handler net i (fun ~src:_ _ -> counts.(i) <- counts.(i) + 1)
  done;
  Network.broadcast net ~src:0 "m";
  Sim.run sim;
  Alcotest.(check (array int)) "everyone got it (incl. self)" [| 1; 1; 1 |] counts

let test_net_broadcast_excl_self () =
  let sim, net = make_net () in
  let counts = Array.make 3 0 in
  for i = 0 to 2 do
    Network.set_handler net i (fun ~src:_ _ -> counts.(i) <- counts.(i) + 1)
  done;
  Network.broadcast net ~src:0 ~include_self:false "m";
  Sim.run sim;
  Alcotest.(check (array int)) "self skipped" [| 0; 1; 1 |] counts

let test_net_self_delivery_is_async () =
  (* A self-send must not run inside the sender's call stack. *)
  let sim, net = make_net () in
  let order = ref [] in
  Network.set_handler net 0 (fun ~src:_ _ -> order := "handler" :: !order);
  Network.send net ~src:0 ~dst:0 "m";
  order := "after-send" :: !order;
  Sim.run sim;
  Alcotest.(check (list string)) "async" [ "after-send"; "handler" ] (List.rev !order)

let test_net_fifo_ordering () =
  (* With random delays and FIFO on, messages on one link arrive in send
     order. *)
  let sim, net = make_net ~fifo:true ~delay:(Network.Uniform { lo = 1; hi = 100 }) ~seed:5L () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 20 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "in order" (List.init 20 (fun i -> i + 1)) (List.rev !got)

let test_net_no_fifo_can_reorder () =
  let sim, net = make_net ~fifo:false ~delay:(Network.Uniform { lo = 1; hi = 100 }) ~seed:5L () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
  for i = 1 to 20 do
    Network.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  check_bool "reordered at least once" true (List.rev !got <> List.init 20 (fun i -> i + 1))

let test_net_filter_drop () =
  let sim, net = make_net () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.set_handler net 2 (fun ~src:_ _ -> incr got);
  ignore
    (Network.add_filter net (fun ~now:_ ~src ~dst _ ->
         if src = 0 && dst = 1 then Network.Drop else Network.Deliver));
  Network.send net ~src:0 ~dst:1 "omitted";
  Network.send net ~src:0 ~dst:2 "fine";
  Sim.run sim;
  check_int "only unfiltered link delivers" 1 !got;
  check_int "dropped counted" 1 (Network.dropped_count net)

let test_net_filter_delay () =
  let sim, net = make_net () in
  let at = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> at := Sim.now sim);
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 90));
  Network.send net ~src:0 ~dst:1 "slow";
  Sim.run sim;
  check_int "base 10 + extra 90" 100 !at

let test_net_remove_filter () =
  let sim, net = make_net () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  let id = Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop) in
  Network.remove_filter net id;
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "filter removed" 1 !got

(* ------------------------------------------------------------------ *)
(* Filter chain (the fault-injection substrate) *)

let test_net_chain_add_remove () =
  let sim, net = make_net () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  let id = Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop) in
  check_int "one chained filter" 1 (Network.filter_count net);
  Network.send net ~src:0 ~dst:1 "a";
  Sim.run sim;
  check_int "dropped by chained filter" 0 !got;
  Network.remove_filter net id;
  check_int "chain empty again" 0 (Network.filter_count net);
  Network.send net ~src:0 ~dst:1 "b";
  Sim.run sim;
  check_int "delivers after removal" 1 !got

let test_net_chain_first_drop_wins () =
  let sim, net = make_net () in
  let got = ref 0 in
  let late_consulted = ref false in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop));
  ignore
    (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ ->
         late_consulted := true;
         Network.Deliver));
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "dropped" 0 !got;
  check_bool "drop short-circuits the rest of the chain" false !late_consulted

let test_net_chain_delays_accumulate () =
  let sim, net = make_net () in
  let at = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> at := Sim.now sim);
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 40));
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 25));
  Network.send net ~src:0 ~dst:1 "slow";
  Sim.run sim;
  check_int "base 10 + 40 + 25" 75 !at

let test_net_chain_duplicate () =
  let sim, net = make_net () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Duplicate 3));
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Duplicate 2));
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "largest duplication wins" 3 !got

let test_net_chain_composes_across_installers () =
  (* A harness-installed filter and an injector-installed one compose: their
     Delays add up, and an earlier filter's Drop wins outright. Replaces the
     retired single-slot [set_filter] composition test. *)
  let sim, net = make_net () in
  let at = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> at := Sim.now sim);
  let first = Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 30) in
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 20));
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "both installers' delays accumulate" 60 !at;
  Network.remove_filter net first;
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop));
  at := -1;
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "drop beats the surviving delay" (-1) !at

let test_net_chain_self_send_bypasses () =
  let sim, net = make_net () in
  let got = ref 0 in
  Network.set_handler net 0 (fun ~src:_ _ -> incr got);
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop));
  Network.send net ~src:0 ~dst:0 "self";
  Sim.run sim;
  check_int "self delivery ignores filters" 1 !got

let test_net_eventually_synchronous () =
  let sim = Sim.create ~seed:3L () in
  let net =
    Network.create ~sim ~n:2
      ~delay:
        (Network.Eventually_synchronous
           { gst = 1000; pre_lo = 1; pre_hi = 500; post_lo = 5; post_hi = 20 })
      ()
  in
  let latencies = ref [] in
  let send_at = ref 0 in
  Network.set_handler net 1 (fun ~src:_ sent -> latencies := (Sim.now sim - sent) :: !latencies);
  (* One message before GST, several after. *)
  Network.send net ~src:0 ~dst:1 !send_at;
  Sim.schedule_at sim ~at:2000 (fun () ->
      for _ = 1 to 30 do
        Network.send net ~src:0 ~dst:1 (Sim.now sim)
      done);
  Sim.run sim;
  let post = List.filteri (fun i _ -> i < 30) !latencies in
  (* list is reversed: last 30 sends are first *)
  List.iter (fun l -> check_bool "post-GST bounded" true (l >= 5 && l <= 20)) post

let test_net_counters () =
  let sim, net = make_net () in
  Network.set_handler net 1 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:0 ~dst:1 "b";
  Network.send net ~src:2 ~dst:1 "c";
  Network.send net ~src:0 ~dst:0 "self";
  Sim.run sim;
  check_int "sent excludes self" 3 (Network.sent_count net);
  check_int "delivered includes self" 4 (Network.delivered_count net);
  check_int "link 0->1" 2 (Network.link_sent net ~src:0 ~dst:1);
  Network.reset_counters net;
  check_int "reset" 0 (Network.sent_count net)

let test_net_unhandled_endpoint_ok () =
  let sim, net = make_net () in
  Network.send net ~src:0 ~dst:2 "void";
  Sim.run sim;
  check_int "counted though discarded" 1 (Network.delivered_count net)

(* ------------------------------------------------------------------ *)
(* Controlled mode + snapshot/restore (the model checker's choice points) *)

let test_ctrl_parks_messages () =
  let sim, net = make_net () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src m -> got := (src, m, Sim.now sim) :: !got);
  Network.set_controlled net true;
  check_bool "flag" true (Network.controlled net);
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:2 ~dst:1 "b";
  Sim.run sim;
  check_int "nothing delivered by the sim" 0 (List.length !got);
  check_int "both parked" 2 (Network.pending_count net);
  check_int "unordered net: all deliverable" 2 (List.length (Network.deliverable net));
  let id_b =
    match List.find (fun (_, src, _, _) -> src = 2) (Network.pending net) with
    | id, _, _, _ -> id
  in
  check_bool "deliver_now" true (Network.deliver_now net id_b);
  Alcotest.(check (list (triple int string int)))
    "synchronous, zero latency" [ (2, "b", 0) ] !got;
  check_int "removed from pending" 1 (Network.pending_count net);
  check_bool "unknown id is a no-op" false (Network.deliver_now net id_b)

let test_ctrl_fifo_oldest_per_link () =
  let sim, net = make_net ~fifo:true () in
  Network.set_handler net 1 (fun ~src:_ _ -> ());
  Network.set_controlled net true;
  Network.send net ~src:0 ~dst:1 "first";
  Network.send net ~src:0 ~dst:1 "second";
  Network.send net ~src:2 ~dst:1 "other-link";
  Sim.run sim;
  let dlv = Network.deliverable net in
  check_int "one per link" 2 (List.length dlv);
  let payloads = List.map (fun (_, _, _, m) -> m) dlv in
  check_bool "oldest of 0->1 only" true
    (List.mem "first" payloads && not (List.mem "second" payloads));
  (match List.find (fun (_, _, _, m) -> m = "first") dlv with
  | id, _, _, _ -> ignore (Network.deliver_now net id));
  check_bool "successor becomes deliverable" true
    (List.exists (fun (_, _, _, m) -> m = "second") (Network.deliverable net))

let test_ctrl_filters_still_apply () =
  let sim, net = make_net () in
  Network.set_handler net 1 (fun ~src:_ _ -> ());
  Network.set_controlled net true;
  ignore
    (Network.add_filter net (fun ~now:_ ~src ~dst:_ _ ->
         if src = 2 then Network.Drop else Network.Duplicate 2));
  Network.send net ~src:0 ~dst:1 "dup";
  Network.send net ~src:2 ~dst:1 "dropped";
  Sim.run sim;
  check_int "duplicate parks two copies, drop parks none" 2 (Network.pending_count net);
  check_int "drop counted" 1 (Network.dropped_count net)

let test_ctrl_snapshot_restores_pending () =
  let sim, net = make_net () in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ _ -> incr got);
  Network.set_controlled net true;
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:0 ~dst:1 "b";
  Sim.run sim;
  let snap = Network.snapshot net in
  let ids = List.map (fun (id, _, _, _) -> id) (Network.pending net) in
  List.iter (fun id -> ignore (Network.deliver_now net id)) ids;
  Network.send net ~src:2 ~dst:1 "c";
  Sim.run sim;
  check_int "drained and refilled" 1 (Network.pending_count net);
  check_int "two delivered" 2 !got;
  Network.restore net snap;
  check_int "pending set rolled back" 2 (Network.pending_count net);
  check_bool "original ids deliverable again" true
    (List.for_all (fun id -> List.mem id (List.map (fun (i, _, _, _) -> i) (Network.pending net))) ids);
  check_int "delivered counter rolled back" 0 (Network.delivered_count net);
  (* The id allocator is rolled back too, so a re-run of the same sends
     reassigns the same ids — replays stay aligned. *)
  Network.send net ~src:2 ~dst:1 "c";
  Sim.run sim;
  let fresh = List.map (fun (id, _, _, _) -> id) (Network.pending net) in
  check_bool "allocator rolled back" true (List.length (List.sort_uniq compare fresh) = 3)

let test_ctrl_restore_filter_chain () =
  (* Satellite: first-Drop-wins must survive a snapshot/restore cycle. *)
  let sim, net = make_net () in
  Network.set_handler net 1 (fun ~src:_ _ -> ());
  Network.set_controlled net true;
  let drop_id = Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Drop) in
  let snap = Network.snapshot net in
  Network.remove_filter net drop_id;
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Duplicate 2));
  Network.send net ~src:0 ~dst:1 "x";
  Sim.run sim;
  check_int "without the drop: duplicated" 2 (Network.pending_count net);
  Network.restore net snap;
  check_int "chain rolled back with pending" 0 (Network.pending_count net);
  Network.send net ~src:0 ~dst:1 "x";
  Sim.run sim;
  check_int "restored chain: first Drop wins again" 0 (Network.pending_count net);
  check_int "dropped" 1 (Network.dropped_count net)

let test_restore_delay_accumulation () =
  (* Satellite: chained Delays keep accumulating after a restore, on a live
     (uncontrolled) net — the chain snapshot is not limited to mc runs. *)
  let sim, net = make_net () in
  let at = ref (-1) in
  Network.set_handler net 1 (fun ~src:_ _ -> at := Sim.now sim);
  ignore (Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 20));
  let keep = Network.add_filter net (fun ~now:_ ~src:_ ~dst:_ _ -> Network.Delay 30) in
  let snap = Network.snapshot net in
  Network.remove_filter net keep;
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "one delay left" (10 + 20) !at;
  Network.restore net snap;
  at := -1;
  let t0 = Sim.now sim in
  Network.send net ~src:0 ~dst:1 "m";
  Sim.run sim;
  check_int "both delays accumulate after restore" (10 + 20 + 30) (!at - t0)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_records_flow () =
  let sim, net = make_net () in
  let tr = Trace.create () in
  Trace.attach tr ~label:(fun m -> m) net;
  Network.set_handler net 1 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 "PREPARE";
  Sim.run sim;
  let es = Trace.entries tr in
  check_int "send + deliver" 2 (List.length es);
  let labels = List.map (fun e -> e.Trace.label) es in
  Alcotest.(check (list string)) "labels" [ "PREPARE"; "PREPARE" ] labels;
  check_int "one delivery" 1 (List.length (Trace.deliveries tr));
  check_bool "render mentions PREPARE" true
    (String.length (Trace.render tr) > 0)

let test_trace_clear () =
  let sim, net = make_net () in
  let tr = Trace.create () in
  Trace.attach tr ~label:(fun m -> m) net;
  Network.send net ~src:0 ~dst:1 "x";
  Sim.run sim;
  Trace.clear tr;
  check_int "cleared" 0 (List.length (Trace.entries tr))

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_network_deterministic =
  QCheck.Test.make ~name:"same seed, same delivery schedule" ~count:30
    QCheck.(int_range 1 1000)
    (fun seed ->
      let run () =
        let sim = Sim.create ~seed:(Int64.of_int seed) () in
        let net = Network.create ~sim ~n:4 ~delay:(Network.Uniform { lo = 1; hi = 50 }) () in
        let log = ref [] in
        for i = 0 to 3 do
          Network.set_handler net i (fun ~src m -> log := (Sim.now sim, src, i, m) :: !log)
        done;
        for i = 0 to 3 do
          Network.broadcast net ~src:i i
        done;
        Sim.run sim;
        !log
      in
      run () = run ())

let prop_fifo_preserves_order =
  QCheck.Test.make ~name:"fifo links never reorder" ~count:50
    QCheck.(pair (int_range 1 100) (int_range 2 30))
    (fun (seed, k) ->
      let sim = Sim.create ~seed:(Int64.of_int seed) () in
      let net =
        Network.create ~sim ~n:2 ~delay:(Network.Uniform { lo = 1; hi = 80 }) ~fifo:true ()
      in
      let got = ref [] in
      Network.set_handler net 1 (fun ~src:_ m -> got := m :: !got);
      for i = 1 to k do
        Network.send net ~src:0 ~dst:1 i
      done;
      Sim.run sim;
      List.rev !got = List.init k (fun i -> i + 1))

let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_network_deterministic; prop_fifo_preserves_order ]

let () =
  Alcotest.run "sim"
    [
      ( "sim",
        [
          Alcotest.test_case "time order" `Quick test_sim_runs_in_time_order;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "clock" `Quick test_sim_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "until limit" `Quick test_sim_until_limit;
          Alcotest.test_case "event budget" `Quick test_sim_max_events_budget;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay_clamped;
          Alcotest.test_case "past schedule_at" `Quick test_sim_schedule_at_past_clamped;
          Alcotest.test_case "determinism" `Quick test_sim_determinism;
          Alcotest.test_case "event counter" `Quick test_sim_events_executed;
        ] );
      ( "network",
        [
          Alcotest.test_case "basic delivery" `Quick test_net_basic_delivery;
          Alcotest.test_case "broadcast" `Quick test_net_broadcast;
          Alcotest.test_case "broadcast excl self" `Quick test_net_broadcast_excl_self;
          Alcotest.test_case "self delivery async" `Quick test_net_self_delivery_is_async;
          Alcotest.test_case "fifo ordering" `Quick test_net_fifo_ordering;
          Alcotest.test_case "non-fifo reorders" `Quick test_net_no_fifo_can_reorder;
          Alcotest.test_case "filter drop" `Quick test_net_filter_drop;
          Alcotest.test_case "filter delay" `Quick test_net_filter_delay;
          Alcotest.test_case "remove filter" `Quick test_net_remove_filter;
          Alcotest.test_case "chain add/remove" `Quick test_net_chain_add_remove;
          Alcotest.test_case "chain first drop wins" `Quick test_net_chain_first_drop_wins;
          Alcotest.test_case "chain delays accumulate" `Quick test_net_chain_delays_accumulate;
          Alcotest.test_case "chain duplicate" `Quick test_net_chain_duplicate;
          Alcotest.test_case "chain composes across installers" `Quick
            test_net_chain_composes_across_installers;
          Alcotest.test_case "chain self-send bypass" `Quick test_net_chain_self_send_bypasses;
          Alcotest.test_case "eventual synchrony" `Quick test_net_eventually_synchronous;
          Alcotest.test_case "counters" `Quick test_net_counters;
          Alcotest.test_case "unhandled endpoint" `Quick test_net_unhandled_endpoint_ok;
        ] );
      ( "controlled",
        [
          Alcotest.test_case "parks and delivers by id" `Quick test_ctrl_parks_messages;
          Alcotest.test_case "fifo oldest per link" `Quick test_ctrl_fifo_oldest_per_link;
          Alcotest.test_case "filters still apply" `Quick test_ctrl_filters_still_apply;
          Alcotest.test_case "snapshot restores pending" `Quick test_ctrl_snapshot_restores_pending;
          Alcotest.test_case "restore keeps first-drop-wins" `Quick test_ctrl_restore_filter_chain;
          Alcotest.test_case "restore keeps delay accumulation" `Quick
            test_restore_delay_accumulation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records flow" `Quick test_trace_records_flow;
          Alcotest.test_case "clear" `Quick test_trace_clear;
        ] );
      ("properties", qsuite);
    ]
