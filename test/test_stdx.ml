(* Unit and property tests for the support kit. *)

open Qs_stdx

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  check_bool "different seeds differ" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_int_bounds () =
  let g = Prng.of_int 7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    check_bool "in range" true (x >= 0 && x < 10)
  done

let test_prng_int_in () =
  let g = Prng.of_int 3 in
  for _ = 1 to 1000 do
    let x = Prng.int_in g 5 9 in
    check_bool "in [5,9]" true (x >= 5 && x <= 9)
  done

let test_prng_int_covers_all () =
  let g = Prng.of_int 11 in
  let seen = Array.make 6 false in
  for _ = 1 to 2000 do
    seen.(Prng.int g 6) <- true
  done;
  Array.iteri (fun i b -> check_bool (Printf.sprintf "value %d seen" i) true b) seen

let test_prng_copy_independent () =
  let a = Prng.of_int 5 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* advancing a must not advance b *)
  let a2 = Prng.next_int64 a and b2 = Prng.next_int64 b in
  check_bool "streams diverge after unequal advances" false (a2 = b2)

let test_prng_split_decorrelated () =
  let a = Prng.of_int 9 in
  let b = Prng.split a in
  check_bool "split stream differs" false (Prng.next_int64 a = Prng.next_int64 b)

let test_prng_float_range () =
  let g = Prng.of_int 13 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    check_bool "in [0, 2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_prng_chance_extremes () =
  let g = Prng.of_int 17 in
  check_bool "p=0 never" false (Prng.chance g 0.0);
  check_bool "p=1 always" true (Prng.chance g 1.0)

let test_prng_chance_rate () =
  let g = Prng.of_int 23 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Prng.chance g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000.0 in
  check_bool "rate near 0.3" true (rate > 0.25 && rate < 0.35)

let test_prng_shuffle_permutation () =
  let g = Prng.of_int 29 in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_prng_sample () =
  let g = Prng.of_int 31 in
  let s = Prng.sample g 3 [ 1; 2; 3; 4; 5 ] in
  check_int "sample size" 3 (List.length s);
  check_int "distinct" 3 (List.length (List.sort_uniq compare s));
  List.iter (fun x -> check_bool "member" true (List.mem x [ 1; 2; 3; 4; 5 ])) s;
  check_int "sample larger than list truncates" 2 (List.length (Prng.sample g 10 [ 1; 2 ]))

let test_prng_invalid_bound () =
  let g = Prng.of_int 1 in
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic_order () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.add h) [ 5; 3; 8; 1; 9; 2 ];
  let out = List.init 6 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list int)) "sorted output" [ 1; 2; 3; 5; 8; 9 ] out

let test_heap_fifo_ties () =
  (* Elements comparing equal must pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  Heap.add h (1, "first");
  Heap.add h (1, "second");
  Heap.add h (0, "zero");
  Heap.add h (1, "third");
  let labels = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "fifo among ties" [ "zero"; "first"; "second"; "third" ] labels

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  check_bool "empty" true (Heap.is_empty h);
  check_bool "pop none" true (Heap.pop h = None);
  check_bool "peek none" true (Heap.peek h = None)

let test_heap_peek_does_not_remove () =
  let h = Heap.create ~cmp:compare in
  Heap.add h 4;
  check_bool "peek" true (Heap.peek h = Some 4);
  check_int "size unchanged" 1 (Heap.size h)

let test_heap_interleaved () =
  let h = Heap.create ~cmp:compare in
  Heap.add h 10;
  Heap.add h 5;
  check_bool "pop 5" true (Heap.pop h = Some 5);
  Heap.add h 1;
  Heap.add h 7;
  check_bool "pop 1" true (Heap.pop h = Some 1);
  check_bool "pop 7" true (Heap.pop h = Some 7);
  check_bool "pop 10" true (Heap.pop h = Some 10);
  check_bool "empty at end" true (Heap.is_empty h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.add h) [ 1; 2; 3 ];
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h)

let test_heap_grows () =
  let h = Heap.create ~cmp:compare in
  for i = 100 downto 1 do
    Heap.add h i
  done;
  check_int "size 100" 100 (Heap.size h);
  for i = 1 to 100 do
    check_int "ordered pop" i (Option.get (Heap.pop h))
  done

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.add h) xs;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
      drain [] = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_add_mem () =
  let b = Bitset.create 100 in
  Bitset.add b 0;
  Bitset.add b 63;
  Bitset.add b 64;
  Bitset.add b 99;
  List.iter (fun i -> check_bool (string_of_int i) true (Bitset.mem b i)) [ 0; 63; 64; 99 ];
  List.iter (fun i -> check_bool (string_of_int i) false (Bitset.mem b i)) [ 1; 62; 65; 98 ]

let test_bitset_remove () =
  let b = Bitset.of_list 10 [ 1; 2; 3 ] in
  Bitset.remove b 2;
  check_bool "removed" false (Bitset.mem b 2);
  check_int "cardinal" 2 (Bitset.cardinal b)

let test_bitset_cardinal () =
  let b = Bitset.of_list 200 [ 0; 50; 100; 150; 199 ] in
  check_int "cardinal" 5 (Bitset.cardinal b);
  Bitset.add b 50;
  check_int "idempotent add" 5 (Bitset.cardinal b)

let test_bitset_set_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] and b = Bitset.of_list 10 [ 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let d = Bitset.copy a in
  Bitset.diff_into d b;
  Alcotest.(check (list int)) "diff" [ 1; 2 ] (Bitset.elements d);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 3 ] (Bitset.elements i)

let test_bitset_iter_order () =
  let b = Bitset.of_list 128 [ 100; 5; 64; 2 ] in
  Alcotest.(check (list int)) "increasing order" [ 2; 5; 64; 100 ] (Bitset.elements b)

let test_bitset_first () =
  let b = Bitset.create 8 in
  check_bool "empty has no first" true (Bitset.first b = None);
  Bitset.add b 6;
  Bitset.add b 3;
  check_bool "first is min" true (Bitset.first b = Some 3)

let test_bitset_equal_copy () =
  let a = Bitset.of_list 70 [ 0; 69 ] in
  let b = Bitset.copy a in
  check_bool "copies equal" true (Bitset.equal a b);
  Bitset.add b 1;
  check_bool "diverge after mutation" false (Bitset.equal a b);
  check_bool "original untouched" false (Bitset.mem a 1)

let test_bitset_out_of_range () =
  let b = Bitset.create 4 in
  Alcotest.check_raises "negative index" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.add b (-1));
  Alcotest.check_raises "too large" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem b 4))

let prop_bitset_matches_list_set =
  QCheck.Test.make ~name:"bitset agrees with list-set semantics" ~count:200
    QCheck.(list (int_bound 63))
    (fun xs ->
      let b = Bitset.of_list 64 xs in
      Bitset.elements b = List.sort_uniq compare xs)

(* The word-skipping paths all branch on the 63-bit word boundary: exercise
   capacities one below, at and one above it, including the empty and full
   sets, against list-set semantics. *)
let prop_bitset_word_boundaries =
  QCheck.Test.make ~name:"bitset word boundaries (63/64/65, empty, full)"
    ~count:200
    QCheck.(pair (int_range 0 2) (list (int_bound 64)))
    (fun (off, xs) ->
      let c = 63 + off in
      let xs = List.filter (fun i -> i < c) xs in
      let b = Bitset.of_list c xs in
      let sorted = List.sort_uniq compare xs in
      let empty = Bitset.create c in
      let full = Bitset.of_list c (List.init c Fun.id) in
      let inter = Bitset.copy b in
      Bitset.inter_into inter full;
      Bitset.elements b = sorted
      && Bitset.cardinal b = List.length sorted
      && List.for_all (fun i -> Bitset.mem b i = List.mem i sorted)
           (List.init c Fun.id)
      && Bitset.is_empty empty
      && Bitset.disjoint b empty
      && Bitset.cardinal full = c
      && Bitset.inter_cardinal b full = Bitset.cardinal b
      && Bitset.equal inter b
      &&
      (Bitset.clear full;
       Bitset.is_empty full))

(* The reconfiguration law: growing a set by one fresh slot at position [s]
   (a config join) and compacting that slot back out (the matching leave)
   is the identity — membership rides the remap in both directions. *)
let prop_bitset_remap_round_trip =
  QCheck.Test.make ~name:"bitset grow/compact remap round-trips" ~count:200
    QCheck.(triple (int_range 1 130) (list (int_bound 129)) small_nat)
    (fun (n, xs, s) ->
      let s = s mod (n + 1) in
      let xs = List.filter (fun i -> i < n) xs in
      let b = Bitset.of_list n xs in
      let grown =
        Bitset.remap b ~n:(n + 1) ~of_new:(fun i ->
            if i < s then i else if i = s then -1 else i - 1)
      in
      let back =
        Bitset.remap grown ~n ~of_new:(fun i -> if i < s then i else i + 1)
      in
      Bitset.capacity grown = n + 1
      && (not (Bitset.mem grown s))
      && Bitset.cardinal grown = Bitset.cardinal b
      && Bitset.equal back b)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_int "count" 5 s.Stats.count;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "median" 3.0 s.Stats.median;
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) s.Stats.stddev

let test_stats_single_point () =
  let s = Stats.summarize [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 7.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "stddev 0" 0.0 s.Stats.stddev

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile 0.95 xs);
  Alcotest.(check (float 1e-9)) "p0 -> min" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p1 -> max" 100.0 (Stats.percentile 1.0 xs)

let test_stats_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize []))

let test_stats_ints () =
  let s = Stats.summarize_ints [ 2; 4; 6 ] in
  Alcotest.(check (float 1e-9)) "mean" 4.0 s.Stats.mean

(* ------------------------------------------------------------------ *)
(* Table *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec loop i = i + nl <= hl && (String.sub haystack i nl = needle || loop (i + 1)) in
  nl = 0 || loop 0

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  check_bool "title present" true (String.length s > 0 && String.sub s 0 3 = "== ");
  check_bool "contains alpha" true (contains ~needle:"alpha" s)

let test_table_bad_row () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_alignment () =
  let t = Table.create ~title:"t" ~columns:[ ("n", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  (* Right-aligned 1 must be padded to width 3. *)
  check_bool "padded" true (List.exists (fun l -> l = "|   1 |") lines)

(* ------------------------------------------------------------------ *)
(* Combin *)

let test_choose_values () =
  check_int "C(5,2)" 10 (Combin.choose 5 2);
  check_int "C(10,3)" 120 (Combin.choose 10 3);
  check_int "C(7,0)" 1 (Combin.choose 7 0);
  check_int "C(7,7)" 1 (Combin.choose 7 7);
  check_int "C(4,9)" 0 (Combin.choose 4 9);
  check_int "C(4,-1)" 0 (Combin.choose 4 (-1));
  check_int "C(52,5)" 2598960 (Combin.choose 52 5)

let test_subset_enumeration () =
  let all = Combin.subsets 4 2 in
  Alcotest.(check (list (list int))) "lexicographic"
    [ [ 0; 1 ]; [ 0; 2 ]; [ 0; 3 ]; [ 1; 2 ]; [ 1; 3 ]; [ 2; 3 ] ]
    all

let test_subset_count () =
  check_int "count matches choose" (Combin.choose 7 3) (List.length (Combin.subsets 7 3))

let test_rank_unrank_roundtrip () =
  let n = 8 and k = 3 in
  List.iteri
    (fun r s ->
      check_int "rank" r (Combin.rank n s);
      Alcotest.(check (list int)) "unrank" s (Combin.unrank n k r))
    (Combin.subsets n k)

let test_next_subset_end () =
  check_bool "last has no successor" true (Combin.next_subset 4 [ 2; 3 ] = None)

let test_unrank_out_of_range () =
  Alcotest.check_raises "rank too big" (Invalid_argument "Combin.unrank: rank out of range")
    (fun () -> ignore (Combin.unrank 4 2 6))

let prop_rank_unrank =
  QCheck.Test.make ~name:"unrank inverts rank" ~count:200
    QCheck.(pair (int_range 1 10) (int_range 0 1000))
    (fun (n, r) ->
      let k = 1 + (r mod n) in
      let total = Combin.choose n k in
      let r = r mod total in
      Combin.rank n (Combin.unrank n k r) = r)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_heap_sorts;
      prop_bitset_matches_list_set;
      prop_bitset_word_boundaries;
      prop_bitset_remap_round_trip;
      prop_rank_unrank;
    ]

let () =
  Alcotest.run "stdx"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic stream" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "int covers range" `Quick test_prng_int_covers_all;
          Alcotest.test_case "copy independence" `Quick test_prng_copy_independent;
          Alcotest.test_case "split decorrelated" `Quick test_prng_split_decorrelated;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "chance rate" `Quick test_prng_chance_rate;
          Alcotest.test_case "shuffle is permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_prng_sample;
          Alcotest.test_case "invalid bound" `Quick test_prng_invalid_bound;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek non-destructive" `Quick test_heap_peek_does_not_remove;
          Alcotest.test_case "interleaved ops" `Quick test_heap_interleaved;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "growth" `Quick test_heap_grows;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "add/mem across words" `Quick test_bitset_add_mem;
          Alcotest.test_case "remove" `Quick test_bitset_remove;
          Alcotest.test_case "cardinal" `Quick test_bitset_cardinal;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          Alcotest.test_case "iteration order" `Quick test_bitset_iter_order;
          Alcotest.test_case "first" `Quick test_bitset_first;
          Alcotest.test_case "equal and copy" `Quick test_bitset_equal_copy;
          Alcotest.test_case "bounds checked" `Quick test_bitset_out_of_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "single point" `Quick test_stats_single_point;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "int summarize" `Quick test_stats_ints;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "bad row arity" `Quick test_table_bad_row;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
        ] );
      ( "combin",
        [
          Alcotest.test_case "choose values" `Quick test_choose_values;
          Alcotest.test_case "subset enumeration" `Quick test_subset_enumeration;
          Alcotest.test_case "subset count" `Quick test_subset_count;
          Alcotest.test_case "rank/unrank roundtrip" `Quick test_rank_unrank_roundtrip;
          Alcotest.test_case "last subset" `Quick test_next_subset_end;
          Alcotest.test_case "unrank bounds" `Quick test_unrank_out_of_range;
        ] );
      ("properties", qsuite);
    ]
